package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nwca/broadband/internal/unit"
)

func TestClassOfBoundaries(t *testing.T) {
	// Class 1 is (100, 200] kbps.
	cases := []struct {
		rate unit.Bitrate
		want CapacityClass
	}{
		{unit.KbpsOf(150), 1},
		{unit.KbpsOf(200), 1}, // upper bound inclusive
		{unit.KbpsOf(201), 2},
		{unit.KbpsOf(400), 2},
		{unit.MbpsOf(6.4), 6},  // (3.2, 6.4]
		{unit.MbpsOf(6.5), 7},  // (6.4, 12.8]
		{unit.MbpsOf(25.6), 8}, // (12.8, 25.6]
		{unit.KbpsOf(100), 0},  // (50, 100]
		{unit.KbpsOf(50), -1},  // (25, 50]
	}
	for _, c := range cases {
		if got := ClassOf(c.rate); got != c.want {
			t.Errorf("ClassOf(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestClassBoundsRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		v = 0.05 + math.Mod(math.Abs(v), 1000) // 50 kbps .. 1 Gbps
		r := unit.MbpsOf(v)
		c := ClassOf(r)
		return c.Contains(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassAdjacency(t *testing.T) {
	// Upper bound of class k equals lower bound of class k+1.
	for k := CapacityClass(-3); k <= 12; k++ {
		if k.Upper() != (k + 1).Lower() {
			t.Errorf("class %d upper %v != class %d lower %v", k, k.Upper(), k+1, (k + 1).Lower())
		}
	}
}

func TestClassString(t *testing.T) {
	c := ClassOf(unit.MbpsOf(10))
	if got := c.String(); got != "(6.4 Mbps, 12.8 Mbps]" {
		t.Errorf("String() = %q", got)
	}
}

func TestClassOfInvalid(t *testing.T) {
	if got := ClassOf(0); got != math.MinInt32 {
		t.Errorf("ClassOf(0) = %d", got)
	}
	if got := ClassOf(-5); got != math.MinInt32 {
		t.Errorf("ClassOf(-5) = %d", got)
	}
}

func TestGroupByClass(t *testing.T) {
	rates := []unit.Bitrate{
		unit.KbpsOf(150), unit.KbpsOf(190), unit.MbpsOf(5), 0, unit.MbpsOf(5.5),
	}
	g := GroupByClass(rates)
	if len(g[1]) != 2 {
		t.Errorf("class 1 members = %v", g[1])
	}
	if len(g[6]) != 2 {
		t.Errorf("class 6 members = %v", g[6])
	}
	total := 0
	for _, members := range g {
		total += len(members)
	}
	if total != 4 {
		t.Errorf("grouped %d members, want 4 (zero rate skipped)", total)
	}
}

func TestTierOf(t *testing.T) {
	cases := []struct {
		rate unit.Bitrate
		want Tier
	}{
		{unit.KbpsOf(512), TierSub1},
		{unit.MbpsOf(1), Tier1to8},
		{unit.MbpsOf(7.9), Tier1to8},
		{unit.MbpsOf(8), Tier8to16},
		{unit.MbpsOf(16), Tier16to32},
		{unit.MbpsOf(32), TierOver32},
		{unit.MbpsOf(100), TierOver32},
	}
	for _, c := range cases {
		if got := TierOf(c.rate); got != c.want {
			t.Errorf("TierOf(%v) = %v, want %v", c.rate, got, c.want)
		}
	}
}

func TestTierStrings(t *testing.T) {
	want := []string{"<1 Mbps", "1-8 Mbps", "8-16 Mbps", "16-32 Mbps", ">32 Mbps"}
	for i, tier := range Tiers() {
		if tier.String() != want[i] {
			t.Errorf("Tier %d = %q, want %q", i, tier.String(), want[i])
		}
	}
	if Tier(99).String() != "Tier(99)" {
		t.Error("unknown tier string")
	}
}

func TestLogBins(t *testing.T) {
	edges := LogBins(0.1, 100, 3)
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	almost(t, "edge0", edges[0], 0.1, 1e-12)
	almost(t, "edge3", edges[3], 100, 1e-12)
	almost(t, "edge1", edges[1], 1, 1e-9)
	almost(t, "edge2", edges[2], 10, 1e-9)
	if LogBins(0, 10, 3) != nil || LogBins(10, 5, 3) != nil || LogBins(1, 10, 0) != nil {
		t.Error("invalid LogBins arguments should return nil")
	}
}

func TestBinIndex(t *testing.T) {
	edges := []float64{1, 10, 100, 1000}
	cases := []struct {
		v    float64
		want int
	}{
		{1, 0}, {5, 0}, {10, 0}, {10.5, 1}, {100, 1}, {999, 2}, {1000, 2},
		{0.5, -1}, {1001, -1},
	}
	for _, c := range cases {
		if got := BinIndex(edges, c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if BinIndex([]float64{1}, 1) != -1 {
		t.Error("degenerate edges should return -1")
	}
}

func TestBinIndexExhaustsRangeProperty(t *testing.T) {
	edges := LogBins(0.1, 1000, 20)
	f := func(v float64) bool {
		v = 0.1 + math.Mod(math.Abs(v), 999.9)
		i := BinIndex(edges, v)
		if i < 0 || i >= 20 {
			return false
		}
		return (v > edges[i] || v == edges[0]) && v <= edges[i+1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
