package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Pearson perfect +", r, 1, 1e-12)
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	almost(t, "Pearson perfect -", r, -1, 1e-12)
}

func TestPearsonKnownValue(t *testing.T) {
	xs := []float64{43, 21, 25, 42, 57, 59}
	ys := []float64{99, 65, 79, 75, 87, 81}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Pearson", r, 0.529809, 1e-5)
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrMismatched {
		t.Error("mismatched lengths should error")
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Error("empty should be ErrEmpty")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrShortSample {
		t.Error("single pair should be ErrShortSample")
	}
	if _, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); err != ErrShortSample {
		t.Error("zero variance should be ErrShortSample")
	}
}

func TestPearsonInvariances(t *testing.T) {
	// Correlation is invariant to positive affine transformations.
	f := func(seed int64, a, b float64) bool {
		rng := newTestRand(seed)
		a = 0.1 + math.Mod(math.Abs(a), 10)
		b = math.Mod(b, 100)
		if math.IsNaN(b) {
			b = 0
		}
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + 0.5*rng.NormFloat64()
		}
		r1, err1 := Pearson(xs, ys)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = a*xs[i] + b
		}
		r2, err2 := Pearson(scaled, ys)
		return err1 == nil && err2 == nil && math.Abs(r1-r2) < 1e-9 && math.Abs(r1) <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPearsonSymmetry(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5, 7}
	ys := []float64{2, 3, 1, 9, 4, 6}
	r1, _ := Pearson(xs, ys)
	r2, _ := Pearson(ys, xs)
	almost(t, "symmetry", r1, r2, 1e-15)
}

func TestLogPearson(t *testing.T) {
	// y = x^2 is a perfect log-log relationship.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	r, err := LogPearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "LogPearson power law", r, 1, 1e-12)
	// Non-positive pairs are skipped, not fatal.
	xs2 := []float64{0, 1, 2, 4, 8}
	ys2 := []float64{5, 1, 4, 16, 64}
	r, err = LogPearson(xs2, ys2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "LogPearson skip zero", r, 1, 1e-12)
	if _, err := LogPearson([]float64{1}, []float64{1, 2}); err != ErrMismatched {
		t.Error("mismatched lengths should error")
	}
	if _, err := LogPearson([]float64{-1, -2}, []float64{1, 2}); err != ErrEmpty {
		t.Error("all-skipped should surface ErrEmpty")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear: Spearman = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Spearman monotone", r, 1, 1e-12)
	// Reversed: -1.
	rev := []float64{125, 64, 27, 8, 1}
	r, _ = Spearman(xs, rev)
	almost(t, "Spearman reversed", r, -1, 1e-12)
}

func TestSpearmanTies(t *testing.T) {
	// With ties, average ranks are used; check a hand-computed case.
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Spearman ties", r, 1, 1e-12)
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 5})
	want := []float64{2, 3.5, 3.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLinearRegression(t *testing.T) {
	// Exact line: y = 3 + 2x.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Slope", fit.Slope, 2, 1e-12)
	almost(t, "Intercept", fit.Intercept, 3, 1e-12)
	almost(t, "R2", fit.R2, 1, 1e-12)
	almost(t, "ResidStd", fit.ResidStd, 0, 1e-9)
	almost(t, "Predict", fit.Predict(10), 23, 1e-12)
	if fit.N != 5 {
		t.Errorf("N = %d", fit.N)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := newTestRand(99)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = 1.5 + 0.8*xs[i] + rng.NormFloat64()
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Slope", fit.Slope, 0.8, 0.02)
	almost(t, "Intercept", fit.Intercept, 1.5, 0.5)
	almost(t, "ResidStd", fit.ResidStd, 1, 0.1)
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression(nil, nil); err != ErrEmpty {
		t.Error("empty should be ErrEmpty")
	}
	if _, err := LinearRegression([]float64{1}, []float64{2}); err != ErrShortSample {
		t.Error("single point should be ErrShortSample")
	}
	if _, err := LinearRegression([]float64{2, 2}, []float64{1, 5}); err != ErrShortSample {
		t.Error("zero x-variance should be ErrShortSample")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err != ErrMismatched {
		t.Error("mismatched should be ErrMismatched")
	}
}

func TestLinearRegressionFlatLine(t *testing.T) {
	fit, err := LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "flat slope", fit.Slope, 0, 1e-12)
	almost(t, "flat R2", fit.R2, 1, 1e-12)
}

func TestRegressionResidualsOrthogonalProperty(t *testing.T) {
	// OLS residuals must be orthogonal to x and sum to ~0.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 50
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = 2*xs[i] + 10*rng.NormFloat64()
		}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			return false
		}
		var sum, dot float64
		for i := range xs {
			r := ys[i] - fit.Predict(xs[i])
			sum += r
			dot += r * xs[i]
		}
		return math.Abs(sum) < 1e-6*float64(n) && math.Abs(dot) < 1e-4*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
