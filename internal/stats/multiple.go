package stats

import (
	"math"
	"sort"
)

// Multiple-testing machinery. The paper runs dozens of binomial tests
// (Tables 1–3, 6–8 and every rung of Table 2) at α = 0.05 each and guards
// against large-sample spuriousness with its 52% practical rule; the
// Benjamini–Hochberg procedure provides the complementary guard against
// multiplicity, and the minimum-detectable-fraction helper makes the
// paper's power trade-offs explicit.

// BenjaminiHochberg applies the Benjamini–Hochberg false-discovery-rate
// procedure at level q to a family of p-values, returning a parallel slice
// marking the discoveries (p-values considered significant with FDR ≤ q).
func BenjaminiHochberg(pvals []float64, q float64) ([]bool, error) {
	if len(pvals) == 0 {
		return nil, ErrEmpty
	}
	if q <= 0 || q >= 1 {
		q = 0.05
	}
	type indexed struct {
		p float64
		i int
	}
	order := make([]indexed, len(pvals))
	for i, p := range pvals {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, ErrShortSample
		}
		order[i] = indexed{p, i}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].p < order[b].p })
	m := float64(len(order))
	// Largest k with p_(k) ≤ k·q/m; everything at or below rank k is a
	// discovery.
	cut := -1
	for k, e := range order {
		if e.p <= float64(k+1)*q/m {
			cut = k
		}
	}
	out := make([]bool, len(pvals))
	for k := 0; k <= cut; k++ {
		out[order[k].i] = true
	}
	return out, nil
}

// MinDetectableFraction returns the smallest success fraction a one-tailed
// binomial test against p0 = 0.5 can detect at significance alpha with the
// given power, for n matched pairs (normal approximation). This is the
// quantity behind the paper's observation that huge samples make trivial
// deviations significant: at n = 10⁵ the detectable fraction sits near
// 50.5%, far below the paper's 52% practical-importance bar.
func MinDetectableFraction(n int, alpha, power float64) (float64, error) {
	if n <= 0 {
		return 0, ErrEmpty
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = Alpha
	}
	if power <= 0 || power >= 1 {
		power = 0.8
	}
	zAlpha := NormalQuantile(1 - alpha)
	zBeta := NormalQuantile(power)
	// Under H0 the standard error is 0.5/√n; using it for the alternative
	// too keeps the closed form (error < 1% for fractions below 0.6).
	se := 0.5 / math.Sqrt(float64(n))
	f := 0.5 + (zAlpha+zBeta)*se
	if f > 1 {
		f = 1
	}
	return f, nil
}

// RequiredPairs inverts MinDetectableFraction: how many matched pairs are
// needed to detect the given success fraction at alpha and power.
func RequiredPairs(fraction, alpha, power float64) (int, error) {
	if fraction <= 0.5 || fraction > 1 {
		return 0, ErrShortSample
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = Alpha
	}
	if power <= 0 || power >= 1 {
		power = 0.8
	}
	zAlpha := NormalQuantile(1 - alpha)
	zBeta := NormalQuantile(power)
	n := math.Pow(0.5*(zAlpha+zBeta)/(fraction-0.5), 2)
	return int(math.Ceil(n)), nil
}
