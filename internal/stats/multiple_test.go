package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBenjaminiHochbergKnownCase(t *testing.T) {
	// Classic worked example: m=6, q=0.05.
	pvals := []float64{0.005, 0.009, 0.05, 0.10, 0.30, 0.90}
	disc, err := BenjaminiHochberg(pvals, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds: 0.0083, 0.0167, 0.025, 0.033, 0.0417, 0.05.
	// p(1)=0.005 ≤ 0.0083 ✓; p(2)=0.009 ≤ 0.0167 ✓; p(3)=0.05 > 0.025 ✗ …
	want := []bool{true, true, false, false, false, false}
	for i := range want {
		if disc[i] != want[i] {
			t.Errorf("discovery[%d] = %v, want %v", i, disc[i], want[i])
		}
	}
}

func TestBenjaminiHochbergStepUp(t *testing.T) {
	// The step-up property: a larger p-value can rescue smaller ones. With
	// p = {0.04, 0.045, 0.049} and q=0.05, the rank-3 test passes
	// (0.049 ≤ 3·0.05/3) so ALL are discoveries.
	disc, err := BenjaminiHochberg([]float64{0.04, 0.045, 0.049}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range disc {
		if !d {
			t.Errorf("step-up should mark all discoveries, index %d false", i)
		}
	}
}

func TestBenjaminiHochbergEdges(t *testing.T) {
	if _, err := BenjaminiHochberg(nil, 0.05); err != ErrEmpty {
		t.Error("empty input should error")
	}
	if _, err := BenjaminiHochberg([]float64{0.5, math.NaN()}, 0.05); err == nil {
		t.Error("NaN p-value should error")
	}
	if _, err := BenjaminiHochberg([]float64{1.5}, 0.05); err == nil {
		t.Error("out-of-range p-value should error")
	}
	// All-null family: nothing discovered.
	disc, _ := BenjaminiHochberg([]float64{0.5, 0.7, 0.9}, 0.05)
	for _, d := range disc {
		if d {
			t.Error("null family produced a discovery")
		}
	}
}

func TestBenjaminiHochbergMonotoneProperty(t *testing.T) {
	// Discoveries form a prefix of the sorted p-values: if p_i is a
	// discovery, every smaller p must be too.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 1 + rng.IntN(30)
		pv := make([]float64, n)
		for i := range pv {
			pv[i] = rng.Float64()
		}
		disc, err := BenjaminiHochberg(pv, 0.1)
		if err != nil {
			return false
		}
		for i := range pv {
			if !disc[i] {
				continue
			}
			for j := range pv {
				if pv[j] < pv[i] && !disc[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinDetectableFraction(t *testing.T) {
	// n = 100k: detectable fraction just above 50% — the paper's point.
	f, err := MinDetectableFraction(100000, 0.05, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if f > 0.51 || f <= 0.5 {
		t.Errorf("MDE at n=100k = %v, want ≈0.504", f)
	}
	// n = 100: much coarser.
	f100, _ := MinDetectableFraction(100, 0.05, 0.8)
	if f100 < 0.6 || f100 > 0.65 {
		t.Errorf("MDE at n=100 = %v, want ≈0.62", f100)
	}
	// Monotone in n.
	f1000, _ := MinDetectableFraction(1000, 0.05, 0.8)
	if !(f100 > f1000 && f1000 > f) {
		t.Errorf("MDE must fall with n: %v, %v, %v", f100, f1000, f)
	}
	if _, err := MinDetectableFraction(0, 0.05, 0.8); err == nil {
		t.Error("n=0 should error")
	}
	// Tiny n clamps at 1.
	f2, _ := MinDetectableFraction(1, 0.05, 0.99)
	if f2 > 1 {
		t.Errorf("MDE must clamp at 1, got %v", f2)
	}
}

func TestRequiredPairsRoundTrip(t *testing.T) {
	// RequiredPairs and MinDetectableFraction must invert each other.
	for _, frac := range []float64{0.52, 0.55, 0.6, 0.7} {
		n, err := RequiredPairs(frac, 0.05, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MinDetectableFraction(n, 0.05, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if got > frac+0.005 {
			t.Errorf("RequiredPairs(%v) = %d but MDE(n) = %v", frac, n, got)
		}
	}
	// The paper's 52% practical bar needs ≈3.9k pairs at 80% power —
	// context for why its significant sub-55% rows all carry n ≳ 10³.
	n, _ := RequiredPairs(0.52, 0.05, 0.8)
	if n < 3000 || n > 4500 {
		t.Errorf("pairs for 52%% = %d, want ≈3860", n)
	}
	if _, err := RequiredPairs(0.5, 0.05, 0.8); err == nil {
		t.Error("fraction at chance should error")
	}
}
