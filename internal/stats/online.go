package stats

import (
	"math"
	"sort"
)

// Online (single-pass) statistics: the streaming counterparts of the exact
// estimators in desc.go / quantile.go / ecdf.go, used when the sample is a
// UserSource-style stream too large to materialize. Three layers:
//
//   - Moments: Welford/Chan running mean and variance with exact min/max,
//     mergeable across shards;
//   - P2: the Jain–Chlamtac P² estimator of a single quantile in O(1)
//     memory;
//   - OnlineECDF: a fixed-bin (linear or log-spaced) single-pass ECDF
//     supporting Eval, Quantile and Curve with a declared worst-case
//     resolution, mergeable across shards.
//
// All three reject NaN at Add, mirroring the exact layer's ErrNaN
// contract (PR 6), so a corrupt stream cannot silently poison a sketch.

// Moments accumulates count, mean, variance (Welford's algorithm) and the
// exact min/max of a stream in O(1) memory. The zero value is ready to use.
// Merge combines two accumulators (Chan et al.'s pairwise update), so
// per-shard moments can be folded into panel-wide ones.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in. NaN observations return ErrNaN and leave
// the accumulator unchanged.
func (m *Moments) Add(x float64) error {
	if math.IsNaN(x) {
		return ErrNaN
	}
	m.n++
	if m.n == 1 {
		m.mean, m.min, m.max = x, x, x
		return nil
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	if x < m.min {
		m.min = x
	}
	if x > m.max {
		m.max = x
	}
	return nil
}

// AddAll folds a slice in, stopping at the first NaN.
func (m *Moments) AddAll(xs []float64) error {
	for _, x := range xs {
		if err := m.Add(x); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds another accumulator into m, as if every observation of o had
// been Added to m directly (up to floating-point association).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}

// N returns the number of observations folded in.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean (ErrEmpty before any observation).
func (m *Moments) Mean() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.mean, nil
}

// Variance returns the unbiased (n−1) sample variance, matching the
// two-pass Variance up to floating-point association.
func (m *Moments) Variance() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	if m.n < 2 {
		return 0, ErrShortSample
	}
	return m.m2 / float64(m.n-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() (float64, error) {
	v, err := m.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest observation seen.
func (m *Moments) Min() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.min, nil
}

// Max returns the largest observation seen.
func (m *Moments) Max() (float64, error) {
	if m.n == 0 {
		return 0, ErrEmpty
	}
	return m.max, nil
}

// P2 estimates a single p-quantile of a stream in O(1) memory with the
// Jain–Chlamtac P² algorithm: five markers whose heights approximate
// (min, p/2, p, (1+p)/2, max) quantiles, adjusted toward their desired
// positions with a piecewise-parabolic update after every observation.
// The first five observations are held exactly, so small samples return
// the exact type-7 quantile.
type P2 struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based observation counts)
	want [5]float64 // desired positions
	inc  [5]float64 // desired-position increments per observation
}

// NewP2 returns a P² estimator of the p-quantile, p in (0, 1).
func NewP2(p float64) (*P2, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return nil, ErrInvalidQuantile
	}
	e := &P2{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// P returns the target quantile probability.
func (e *P2) P() float64 { return e.p }

// N returns the number of observations folded in.
func (e *P2) N() int { return e.n }

// Add folds one observation in; NaN returns ErrNaN and is not folded.
func (e *P2) Add(x float64) error {
	if math.IsNaN(x) {
		return ErrNaN
	}
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.inc[i]
			}
		}
		return nil
	}

	// Locate the cell and clamp the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			// Piecewise-parabolic (P²) candidate height.
			qp := e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
				((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
					(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				// Parabola left the bracket: fall back to linear.
				j := i + int(s)
				e.q[i] += s * (e.q[j] - e.q[i]) / (e.pos[j] - e.pos[i])
			}
			e.pos[i] += s
		}
	}
	e.n++
	return nil
}

// Quantile returns the current estimate: exact (type 7) below five
// observations, the middle P² marker after.
func (e *P2) Quantile() (float64, error) {
	if e.n == 0 {
		return 0, ErrEmpty
	}
	if e.n < 5 {
		s := make([]float64, e.n)
		copy(s, e.q[:e.n])
		sort.Float64s(s)
		return quantileSorted(s, e.p), nil
	}
	return e.q[2], nil
}

// OnlineECDF is a single-pass binned approximation of an ECDF: a fixed
// number of bins spanning [Lo, Hi] (linear, or log-spaced for scale-free
// positive metrics like bitrates) counts observations as they stream by;
// Eval and Quantile interpolate within bins. Observations outside the
// configured span clamp into the first/last bin, and the exact min/max are
// tracked so the distribution's support is reported truthfully.
//
// The worst-case quantile error is one bin: |Quantile(p) − exact| is
// bounded by the containing bin's width (relative width ≈ (Hi/Lo)^(1/Bins)
// − 1 in log mode). Declare tolerances accordingly (DESIGN.md §8).
type OnlineECDF struct {
	lo, hi float64
	log    bool
	counts []int64
	n      int64
	min    float64
	max    float64
}

// NewOnlineECDF builds an empty binned ECDF over [lo, hi]. In log mode the
// bin edges are geometrically spaced and lo must be positive.
func NewOnlineECDF(lo, hi float64, bins int, logSpaced bool) (*OnlineECDF, error) {
	if bins < 1 || math.IsNaN(lo) || math.IsNaN(hi) || lo >= hi {
		return nil, ErrInvalidBins
	}
	if logSpaced && lo <= 0 {
		return nil, ErrInvalidBins
	}
	return &OnlineECDF{lo: lo, hi: hi, log: logSpaced, counts: make([]int64, bins)}, nil
}

// Bins returns the bin count.
func (e *OnlineECDF) Bins() int { return len(e.counts) }

// N returns the number of observations folded in.
func (e *OnlineECDF) N() int64 { return e.n }

// pos maps a value onto the continuous bin coordinate in [0, Bins].
func (e *OnlineECDF) pos(x float64) float64 {
	var f float64
	if e.log {
		f = math.Log(x/e.lo) / math.Log(e.hi/e.lo)
	} else {
		f = (x - e.lo) / (e.hi - e.lo)
	}
	return f * float64(len(e.counts))
}

// edge is the inverse of pos: the value at continuous bin coordinate c.
func (e *OnlineECDF) edge(c float64) float64 {
	f := c / float64(len(e.counts))
	if e.log {
		return e.lo * math.Exp(f*math.Log(e.hi/e.lo))
	}
	return e.lo + f*(e.hi-e.lo)
}

// Add folds one observation in. Values at or outside the span clamp into
// the terminal bins (the exact min/max are still tracked); NaN returns
// ErrNaN and is not folded.
func (e *OnlineECDF) Add(x float64) error {
	if math.IsNaN(x) {
		return ErrNaN
	}
	i := 0
	if x > e.lo { // also filters log-mode x <= 0
		i = int(e.pos(x))
		if i >= len(e.counts) {
			i = len(e.counts) - 1
		}
	}
	e.counts[i]++
	e.n++
	if e.n == 1 {
		e.min, e.max = x, x
		return nil
	}
	if x < e.min {
		e.min = x
	}
	if x > e.max {
		e.max = x
	}
	return nil
}

// Merge folds another ECDF with the identical span/bin configuration into
// e; it returns ErrMismatched when the configurations differ.
func (e *OnlineECDF) Merge(o *OnlineECDF) error {
	if e.lo != o.lo || e.hi != o.hi || e.log != o.log || len(e.counts) != len(o.counts) {
		return ErrMismatched
	}
	if o.n == 0 {
		return nil
	}
	for i, c := range o.counts {
		e.counts[i] += c
	}
	if e.n == 0 {
		e.min, e.max = o.min, o.max
	} else {
		if o.min < e.min {
			e.min = o.min
		}
		if o.max > e.max {
			e.max = o.max
		}
	}
	e.n += o.n
	return nil
}

// Min returns the exact smallest observation seen.
func (e *OnlineECDF) Min() (float64, error) {
	if e.n == 0 {
		return 0, ErrEmpty
	}
	return e.min, nil
}

// Max returns the exact largest observation seen.
func (e *OnlineECDF) Max() (float64, error) {
	if e.n == 0 {
		return 0, ErrEmpty
	}
	return e.max, nil
}

// Eval returns the approximate F(x): complete bins below x count fully,
// the containing bin contributes its within-bin fraction.
func (e *OnlineECDF) Eval(x float64) float64 {
	if e.n == 0 || x < e.min {
		return 0
	}
	if x >= e.max {
		return 1
	}
	c := e.pos(x)
	if c <= 0 {
		return 0
	}
	full := int(c)
	if full >= len(e.counts) {
		full = len(e.counts)
	}
	var cum int64
	for i := 0; i < full; i++ {
		cum += e.counts[i]
	}
	frac := 0.0
	if full < len(e.counts) {
		frac = (c - float64(full)) * float64(e.counts[full])
	}
	return (float64(cum) + frac) / float64(e.n)
}

// Quantile returns the approximate p-quantile: the bin containing the
// p·n-th observation, interpolated linearly (in the bin-coordinate domain,
// so geometrically in log mode) and clamped to the exact observed range.
func (e *OnlineECDF) Quantile(p float64) (float64, error) {
	if e.n == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(p) {
		return math.NaN(), nil
	}
	if p <= 0 {
		return e.min, nil
	}
	if p >= 1 {
		return e.max, nil
	}
	target := p * float64(e.n)
	var cum int64
	for i, c := range e.counts {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= target {
			frac := (target - float64(cum)) / float64(c)
			x := e.edge(float64(i) + frac)
			// The terminal bins absorb out-of-span values; the exact
			// extrema bound every answer truthfully.
			if x < e.min {
				x = e.min
			}
			if x > e.max {
				x = e.max
			}
			return x, nil
		}
		cum += c
	}
	return e.max, nil
}

// Curve returns n evenly spaced (in probability) points on the binned
// ECDF — the single-pass counterpart of ECDF.Curve.
func (e *OnlineECDF) Curve(n int) ([]Point, error) {
	if e.n == 0 {
		return nil, ErrEmpty
	}
	if n < 2 {
		n = 2
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		x, err := e.Quantile(p)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{X: x, F: p})
	}
	return pts, nil
}
