package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, "Quantile", got, c.want, 1e-12)
	}
}

func TestQuantileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{9, 1, 5}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEdges(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("Quantile(nil) should be ErrEmpty")
	}
	got, _ := Quantile([]float64{7}, 0.3)
	if got != 7 {
		t.Errorf("singleton quantile = %v, want 7", got)
	}
	nan, _ := Quantile([]float64{1, 2}, math.NaN())
	if !math.IsNaN(nan) {
		t.Error("Quantile(NaN p) should be NaN")
	}
	lo, _ := Quantile([]float64{1, 2}, -1)
	hi, _ := Quantile([]float64{1, 2}, 2)
	if lo != 1 || hi != 2 {
		t.Error("out-of-range p should clamp to extremes")
	}
}

func TestPercentileAndMedian(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	p95, _ := Percentile(xs, 95)
	almost(t, "P95", p95, 95.5, 1e-12)
	med, _ := Median(xs)
	almost(t, "Median", med, 55, 1e-12)
	iqr, _ := IQR(xs)
	almost(t, "IQR", iqr, 45, 1e-12)
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, p1, p2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		p1 = math.Mod(math.Abs(p1), 1)
		p2 = math.Mod(math.Abs(p2), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, err1 := Quantile(vals, p1)
		q2, err2 := Quantile(vals, p2)
		return err1 == nil && err2 == nil && q1 <= q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		p = math.Mod(math.Abs(p), 1)
		q, err := Quantile(vals, p)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(vals)
		return q >= lo && q <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 101 {
		t.Errorf("N = %d", s.N)
	}
	almost(t, "Mean", s.Mean, 50, 1e-12)
	almost(t, "Median", s.Median, 50, 1e-12)
	almost(t, "P95", s.P95, 95, 1e-12)
	almost(t, "P05", s.P05, 5, 1e-12)
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("range = [%v, %v]", s.Min, s.Max)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should be ErrEmpty")
	}
	one, err := Summarize([]float64{3})
	if err != nil || one.StdDev != 0 {
		t.Errorf("Summarize singleton: %+v err %v", one, err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 3 {
		t.Errorf("range = [%v, %v]", e.Min(), e.Max())
	}
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Error("NewECDF(nil) should be ErrEmpty")
	}
}

func TestECDFCurve(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	e, _ := NewECDF(xs)
	pts := e.Curve(11)
	if len(pts) != 11 {
		t.Fatalf("Curve returned %d points", len(pts))
	}
	if pts[0].F != 0 || pts[10].F != 1 {
		t.Errorf("curve endpoints F = %v, %v", pts[0].F, pts[10].F)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	// Degenerate requests.
	if got := e.Curve(0); len(got) != 2 {
		t.Errorf("Curve(0) gave %d points, want 2", len(got))
	}
}

func TestECDFEvalMatchesDefinitionProperty(t *testing.T) {
	f := func(vals []float64, x float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		if math.IsNaN(x) {
			x = 0
		}
		e, err := NewECDF(vals)
		if err != nil {
			return false
		}
		count := 0
		for _, v := range vals {
			if v <= x {
				count++
			}
		}
		return e.Eval(x) == float64(count)/float64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFQuantileAgreesWithSort(t *testing.T) {
	vals := []float64{5, 3, 8, 1, 9, 2}
	e, _ := NewECDF(vals)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 0.33, 0.5, 0.77, 1} {
		want, _ := Quantile(sorted, p)
		if got := e.Quantile(p); got != want {
			t.Errorf("ECDF.Quantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestRenderQuantiles(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3})
	out := e.RenderQuantiles(nil)
	if out == "" || !strings.Contains(out, "p50=2") {
		t.Errorf("RenderQuantiles = %q", out)
	}
}
