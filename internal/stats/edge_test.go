package stats

import (
	"math"
	"testing"
)

// The edge-case contract of the descriptive layer, in one table: empty
// samples are the only error; a single observation is a valid (degenerate)
// sample everywhere except the variance family; all-equal samples are
// exact; and non-finite observations propagate silently (garbage in,
// garbage out — callers filter, the stats layer never panics).

type descCase struct {
	name    string
	xs      []float64
	wantErr bool    // every one-sample function errors
	mean    float64 // asserted when wantErr is false (NaN matched by IsNaN)
	median  float64
}

func descCases() []descCase {
	return []descCase{
		{name: "empty", xs: nil, wantErr: true},
		{name: "single", xs: []float64{3}, mean: 3, median: 3},
		{name: "all-equal", xs: []float64{2, 2, 2, 2}, mean: 2, median: 2},
		{name: "negative", xs: []float64{-5, -1, -3}, mean: -3, median: -3},
	}
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func TestDescriptiveEdgeTable(t *testing.T) {
	t.Parallel()
	for _, c := range descCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			m, errMean := Mean(c.xs)
			md, errMed := Median(c.xs)
			_, _, errMM := MinMax(c.xs)
			_, errSumm := Summarize(c.xs)
			_, errECDF := NewECDF(c.xs)
			_, errCI := MeanCI(c.xs, 0.95)
			for name, err := range map[string]error{
				"Mean": errMean, "Median": errMed, "MinMax": errMM,
				"Summarize": errSumm, "NewECDF": errECDF, "MeanCI": errCI,
			} {
				if (err != nil) != c.wantErr {
					t.Errorf("%s(%v) error = %v, want error %v", name, c.xs, err, c.wantErr)
				}
			}
			if c.wantErr {
				return
			}
			if !sameFloat(m, c.mean) {
				t.Errorf("Mean(%v) = %v, want %v", c.xs, m, c.mean)
			}
			if !sameFloat(md, c.median) {
				t.Errorf("Median(%v) = %v, want %v", c.xs, md, c.median)
			}
		})
	}
}

func TestVarianceNeedsTwo(t *testing.T) {
	t.Parallel()
	if _, err := Variance([]float64{3}); err == nil {
		t.Error("Variance of a single observation should error")
	}
	if _, err := StdDev([]float64{3}); err == nil {
		t.Error("StdDev of a single observation should error")
	}
	v, err := Variance([]float64{2, 2, 2, 2})
	if err != nil || v != 0 {
		t.Errorf("Variance(all-equal) = %v, %v; want 0, nil", v, err)
	}
}

// TestNonFinitePropagation pins the silent-propagation contract: NaN and
// Inf observations never error and never panic; moment statistics carry
// the poison through, while order statistics that only compare (MinMax)
// skip past NaN.
func TestNonFinitePropagation(t *testing.T) {
	t.Parallel()
	nan, inf := math.NaN(), math.Inf(1)

	m, err := Mean([]float64{1, nan, 3})
	if err != nil || !math.IsNaN(m) {
		t.Errorf("Mean with NaN = %v, %v; want NaN, nil", m, err)
	}
	m, err = Mean([]float64{1, inf, 3})
	if err != nil || !math.IsInf(m, 1) {
		t.Errorf("Mean with +Inf = %v, %v; want +Inf, nil", m, err)
	}
	v, err := Variance([]float64{1, inf, 3})
	if err != nil || !math.IsNaN(v) {
		t.Errorf("Variance with +Inf = %v, %v; want NaN (Inf-Inf), nil", v, err)
	}
	lo, hi, err := MinMax([]float64{1, nan, 3})
	if err != nil || lo != 1 || hi != 3 {
		t.Errorf("MinMax with NaN = %v, %v, %v; want 1, 3, nil", lo, hi, err)
	}
	lo, hi, err = MinMax([]float64{1, inf, 3})
	if err != nil || lo != 1 || !math.IsInf(hi, 1) {
		t.Errorf("MinMax with +Inf = %v, %v, %v; want 1, +Inf, nil", lo, hi, err)
	}
	if _, err := NewECDF([]float64{1, nan, 3}); err != nil {
		t.Errorf("NewECDF with NaN errored: %v", err)
	}
	if q, err := Quantile([]float64{1, nan}, 0.5); err != nil {
		t.Errorf("Quantile with NaN = %v, %v; want silent propagation", q, err)
	}
}

// TestPairedEdgeTable sweeps the two-sample machinery over its degenerate
// inputs: constant series kill Pearson and the regression (zero variance),
// all-tied pairs starve the Wilcoxon test, and the rank tests degrade
// gracefully instead of erroring.
func TestPairedEdgeTable(t *testing.T) {
	t.Parallel()
	nan := math.NaN()

	if _, err := Pearson([]float64{1, 2, 3}, []float64{2, 2, 2}); err == nil {
		t.Error("Pearson against a constant series should error (zero variance)")
	}
	if r, err := Pearson([]float64{1, nan, 3}, []float64{1, 2, 3}); err != nil || !math.IsNaN(r) {
		t.Errorf("Pearson with NaN = %v, %v; want NaN, nil", r, err)
	}
	if _, err := LinearRegression([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("LinearRegression on constant x should error")
	}
	if r, err := Spearman([]float64{1, 2}, []float64{3, 4}); err != nil || r != 1 {
		t.Errorf("Spearman of two concordant pairs = %v, %v; want 1, nil", r, err)
	}
	k, err := KSTest([]float64{1}, []float64{2})
	if err != nil || k.D != 1 {
		t.Errorf("KS of disjoint singletons = %v, %v; want D=1, nil", k.D, err)
	}
	u, err := MannWhitneyU([]float64{2, 2}, []float64{2, 2}, TailTwoSided)
	if err != nil || u.P != 1 {
		t.Errorf("MannWhitney on identical all-equal samples: P=%v, %v; want 1, nil", u.P, err)
	}
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}, TailGreater); err == nil {
		t.Error("Wilcoxon with every pair tied should error (no informative pairs)")
	}
}
