package stats

import (
	"math"
	"testing"
)

// The edge-case contract of the descriptive layer, in one table: empty
// samples are the only error; a single observation is a valid (degenerate)
// sample everywhere except the variance family; all-equal samples are
// exact. Infinities propagate silently (garbage in, garbage out — callers
// filter, the stats layer never panics), but the order-statistic family
// (Quantile, Percentile, Median, IQR, Summarize) rejects NaN with ErrNaN:
// sorting places NaNs in unspecified positions, so a NaN-contaminated
// quantile would be nondeterministic rather than merely wrong.

type descCase struct {
	name    string
	xs      []float64
	wantErr bool    // every one-sample function errors
	mean    float64 // asserted when wantErr is false (NaN matched by IsNaN)
	median  float64
}

func descCases() []descCase {
	return []descCase{
		{name: "empty", xs: nil, wantErr: true},
		{name: "single", xs: []float64{3}, mean: 3, median: 3},
		{name: "all-equal", xs: []float64{2, 2, 2, 2}, mean: 2, median: 2},
		{name: "negative", xs: []float64{-5, -1, -3}, mean: -3, median: -3},
	}
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func TestDescriptiveEdgeTable(t *testing.T) {
	t.Parallel()
	for _, c := range descCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			m, errMean := Mean(c.xs)
			md, errMed := Median(c.xs)
			_, _, errMM := MinMax(c.xs)
			_, errSumm := Summarize(c.xs)
			_, errECDF := NewECDF(c.xs)
			_, errCI := MeanCI(c.xs, 0.95)
			for name, err := range map[string]error{
				"Mean": errMean, "Median": errMed, "MinMax": errMM,
				"Summarize": errSumm, "NewECDF": errECDF, "MeanCI": errCI,
			} {
				if (err != nil) != c.wantErr {
					t.Errorf("%s(%v) error = %v, want error %v", name, c.xs, err, c.wantErr)
				}
			}
			if c.wantErr {
				return
			}
			if !sameFloat(m, c.mean) {
				t.Errorf("Mean(%v) = %v, want %v", c.xs, m, c.mean)
			}
			if !sameFloat(md, c.median) {
				t.Errorf("Median(%v) = %v, want %v", c.xs, md, c.median)
			}
		})
	}
}

// TestOrderStatisticsRejectNaN pins the NaN contract of the quantile
// family (NewECDF included — it sorts too): any NaN anywhere in the sample
// is ErrNaN, deterministically, regardless of position or the rest of the
// data.
func TestOrderStatisticsRejectNaN(t *testing.T) {
	t.Parallel()
	nan := math.NaN()
	samples := [][]float64{
		{nan},
		{nan, 1, 2},
		{1, nan, 2},
		{1, 2, nan},
		{nan, nan},
		{math.Inf(1), nan, math.Inf(-1)},
	}
	for _, xs := range samples {
		if _, err := Quantile(xs, 0.5); err != ErrNaN {
			t.Errorf("Quantile(%v) err = %v, want ErrNaN", xs, err)
		}
		if _, err := NewECDF(xs); err != ErrNaN {
			t.Errorf("NewECDF(%v) err = %v, want ErrNaN", xs, err)
		}
		if _, err := Percentile(xs, 95); err != ErrNaN {
			t.Errorf("Percentile(%v) err = %v, want ErrNaN", xs, err)
		}
		if _, err := Median(xs); err != ErrNaN {
			t.Errorf("Median(%v) err = %v, want ErrNaN", xs, err)
		}
		if _, err := IQR(xs); err != ErrNaN {
			t.Errorf("IQR(%v) err = %v, want ErrNaN", xs, err)
		}
		if _, err := Summarize(xs); err != ErrNaN {
			t.Errorf("Summarize(%v) err = %v, want ErrNaN", xs, err)
		}
	}
	// Infinities are not NaNs: they sort deterministically and pass through.
	inf := []float64{math.Inf(-1), 0, math.Inf(1)}
	if med, err := Median(inf); err != nil || med != 0 {
		t.Errorf("Median(±Inf sample) = %v, %v; want 0, nil", med, err)
	}
	// The empty-sample error still wins over everything.
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
}

// TestQuantileSortedFastPath pins the sorted-input fast path: sorted input
// is used in place (no copy, no mutation) and yields exactly the values the
// copying slow path computes for a shuffled permutation of the same data.
func TestQuantileSortedFastPath(t *testing.T) {
	t.Parallel()
	sorted := []float64{1, 2, 3, 5, 8, 13, 21, 34}
	shuffled := []float64{21, 2, 34, 1, 8, 5, 13, 3}
	for _, p := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1} {
		a, err := Quantile(sorted, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Quantile(shuffled, p)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("Quantile(p=%v): sorted %v != shuffled %v", p, a, b)
		}
	}
	sa, err := Summarize(sorted)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Summarize(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("Summarize: sorted %+v != shuffled %+v", sa, sb)
	}
	ia, _ := IQR(sorted)
	ib, _ := IQR(shuffled)
	if ia != ib {
		t.Errorf("IQR: sorted %v != shuffled %v", ia, ib)
	}
	for i, want := range []float64{1, 2, 3, 5, 8, 13, 21, 34} {
		if sorted[i] != want {
			t.Fatalf("fast path mutated its input: %v", sorted)
		}
	}
	for i, want := range []float64{21, 2, 34, 1, 8, 5, 13, 3} {
		if shuffled[i] != want {
			t.Fatalf("slow path mutated its input: %v", shuffled)
		}
	}
}

func TestVarianceNeedsTwo(t *testing.T) {
	t.Parallel()
	if _, err := Variance([]float64{3}); err == nil {
		t.Error("Variance of a single observation should error")
	}
	if _, err := StdDev([]float64{3}); err == nil {
		t.Error("StdDev of a single observation should error")
	}
	v, err := Variance([]float64{2, 2, 2, 2})
	if err != nil || v != 0 {
		t.Errorf("Variance(all-equal) = %v, %v; want 0, nil", v, err)
	}
}

// TestNonFinitePropagation pins the silent-propagation contract of the
// moment statistics: NaN and Inf observations never error and never panic;
// the poison carries through, while order statistics that only compare
// (MinMax) skip past NaN. The sorting order statistics are the exception —
// they reject NaN with ErrNaN (see TestOrderStatisticsRejectNaN).
func TestNonFinitePropagation(t *testing.T) {
	t.Parallel()
	nan, inf := math.NaN(), math.Inf(1)

	m, err := Mean([]float64{1, nan, 3})
	if err != nil || !math.IsNaN(m) {
		t.Errorf("Mean with NaN = %v, %v; want NaN, nil", m, err)
	}
	m, err = Mean([]float64{1, inf, 3})
	if err != nil || !math.IsInf(m, 1) {
		t.Errorf("Mean with +Inf = %v, %v; want +Inf, nil", m, err)
	}
	v, err := Variance([]float64{1, inf, 3})
	if err != nil || !math.IsNaN(v) {
		t.Errorf("Variance with +Inf = %v, %v; want NaN (Inf-Inf), nil", v, err)
	}
	lo, hi, err := MinMax([]float64{1, nan, 3})
	if err != nil || lo != 1 || hi != 3 {
		t.Errorf("MinMax with NaN = %v, %v, %v; want 1, 3, nil", lo, hi, err)
	}
	lo, hi, err = MinMax([]float64{1, inf, 3})
	if err != nil || lo != 1 || !math.IsInf(hi, 1) {
		t.Errorf("MinMax with +Inf = %v, %v, %v; want 1, +Inf, nil", lo, hi, err)
	}
	if _, err := NewECDF([]float64{1, nan, 3}); err != ErrNaN {
		t.Errorf("NewECDF with NaN err = %v; want ErrNaN", err)
	}
	if _, err := NewECDF([]float64{1, inf, 3}); err != nil {
		t.Errorf("NewECDF with +Inf errored: %v (infinities sort fine)", err)
	}
	if _, err := Quantile([]float64{1, nan}, 0.5); err != ErrNaN {
		t.Errorf("Quantile with NaN err = %v; want ErrNaN", err)
	}
}

// TestPairedEdgeTable sweeps the two-sample machinery over its degenerate
// inputs: constant series kill Pearson and the regression (zero variance),
// all-tied pairs starve the Wilcoxon test, and the rank tests degrade
// gracefully instead of erroring.
func TestPairedEdgeTable(t *testing.T) {
	t.Parallel()
	nan := math.NaN()

	if _, err := Pearson([]float64{1, 2, 3}, []float64{2, 2, 2}); err == nil {
		t.Error("Pearson against a constant series should error (zero variance)")
	}
	if r, err := Pearson([]float64{1, nan, 3}, []float64{1, 2, 3}); err != nil || !math.IsNaN(r) {
		t.Errorf("Pearson with NaN = %v, %v; want NaN, nil", r, err)
	}
	if _, err := LinearRegression([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("LinearRegression on constant x should error")
	}
	if r, err := Spearman([]float64{1, 2}, []float64{3, 4}); err != nil || r != 1 {
		t.Errorf("Spearman of two concordant pairs = %v, %v; want 1, nil", r, err)
	}
	k, err := KSTest([]float64{1}, []float64{2})
	if err != nil || k.D != 1 {
		t.Errorf("KS of disjoint singletons = %v, %v; want D=1, nil", k.D, err)
	}
	u, err := MannWhitneyU([]float64{2, 2}, []float64{2, 2}, TailTwoSided)
	if err != nil || u.P != 1 {
		t.Errorf("MannWhitney on identical all-equal samples: P=%v, %v; want 1, nil", u.P, err)
	}
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}, TailGreater); err == nil {
		t.Error("Wilcoxon with every pair tied should error (no informative pairs)")
	}
}
