package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runMain(t *testing.T, ctx context.Context, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = Main(ctx, args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestMainUsageErrors(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"no input", nil, "nothing to run"},
		{"all plus files", []string{"-all", "x.json"}, "mutually exclusive"},
		{"missing file", []string{"no-such-pack.json"}, "no such file"},
		{"bad run pattern", []string{"-run", "(", "-all", "-dir", "../../testdata/scenarios"}, "bad -run pattern"},
		{"run matches nothing", []string{"-all", "-dir", "../../testdata/scenarios", "-run", "zzz"}, "no pack matches"},
		{"bad seeds", []string{"-seeds", "x", "testdata/failing.json"}, "bad seed"},
		{"bad flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runMain(t, ctx, tc.args...)
			if code != ExitErr {
				t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitErr, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.want)
			}
		})
	}
}

func TestMainInterruptedExits130(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, _, stderr := runMain(t, ctx, "-seeds", "7", "testdata/failing.json")
	if code != ExitSignal {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitSignal, stderr)
	}
	if !strings.Contains(stderr, "interrupted") {
		t.Fatalf("stderr %q does not say interrupted", stderr)
	}
}

// The failing fixture proves FAIL reporting end to end: the run exits 1,
// renders both verdicts, and the -json report matches the committed schema
// golden byte for byte (the report carries no timings or host data, so it
// is reproducible anywhere). Regenerate with:
//
//	go run ./cmd/bbscenario -seeds 7 -json internal/scenario/testdata/failing-report.golden.json internal/scenario/testdata/failing.json
func TestMainFailingFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two worlds")
	}
	jsonOut := filepath.Join(t.TempDir(), "report.json")
	code, stdout, stderr := runMain(t, context.Background(),
		"-seeds", "7", "-json", jsonOut, "testdata/failing.json")
	if code != ExitFail {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFail, stderr)
	}
	for _, want := range []string{
		"failing/fig01/expected-to-fail @ seed 7: FAIL",
		"does not increase",
		"failing/fig01/expected-to-pass @ seed 7: PASS",
		"PASS: 1/2",
		"FAIL: 1/2",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	got, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/failing-report.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("-json report drifted from golden:\n got: %s\nwant: %s", got, want)
	}
}

// A passing pack exits 0 and renders only PASS verdicts; -run filters the
// catalog down to the named pack.
func TestMainPassAndRunFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two worlds")
	}
	code, stdout, stderr := runMain(t, context.Background(),
		"-all", "-dir", "../../testdata/scenarios", "-run", "^need-flat$", "-seeds", "7")
	if code != ExitOK {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if strings.Contains(stdout, "FAIL") {
		t.Fatalf("unexpected FAIL in:\n%s", stdout)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if strings.Contains(line, "@ seed") && !strings.HasPrefix(line, "need-flat/") {
			t.Fatalf("-run let a foreign pack through: %q", line)
		}
	}
}
