package scenario

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the opa-test-style text report: one PASS/FAIL line per
// assertion in deterministic order, failure details indented under the
// line, and the summary counts last.
func (r *Report) Render(w io.Writer) {
	for _, p := range r.Packs {
		for _, o := range p.Outcomes {
			verdict := "PASS"
			if !o.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "%s @ seed %d: %s\n", o.Name(p.Name), o.Seed, verdict)
			if o.Msg != "" {
				fmt.Fprintf(w, "  %s\n", o.Msg)
			}
		}
	}
	total := r.Passed + r.Failed
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintf(w, "PASS: %d/%d\n", r.Passed, total)
	if r.Failed > 0 {
		fmt.Fprintf(w, "FAIL: %d/%d\n", r.Failed, total)
	}
}
