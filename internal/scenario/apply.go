package scenario

import (
	"fmt"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/synth"
)

// Apply transforms the baseline world config into the pack's counterfactual
// config. The baseline is not mutated: profiles are deep-copied before any
// market delta touches them. When the baseline carries no explicit profile
// set, the built-in market world is the starting point — the same profiles
// the baseline build will default to, so baseline and scenario differ by
// exactly the declared deltas.
func (p *Pack) Apply(base synth.Config) (synth.Config, error) {
	cfg := base
	if d := p.Deltas.Config; d != nil {
		if d.YearGrowth != nil {
			cfg.YearGrowth = *d.YearGrowth
		}
		if d.NeedGrowth != nil {
			cfg.NeedGrowth = *d.NeedGrowth
		}
		if d.Years != nil {
			cfg.Years = append([]int(nil), d.Years...)
		}
		if d.DisableQoE != nil {
			cfg.DisableQoE = *d.DisableQoE
		}
	}
	if len(p.Deltas.Markets) == 0 {
		return cfg, nil
	}

	src := base.Profiles
	if src == nil {
		src = market.World()
	}
	profiles := make([]market.Profile, len(src))
	copy(profiles, src)
	index := make(map[string]int, len(profiles))
	for i, prof := range profiles {
		index[prof.Country.Code] = i
	}
	for di, d := range p.Deltas.Markets {
		targets := d.Countries
		if len(targets) == 0 {
			targets = make([]string, 0, len(profiles))
			for _, prof := range profiles {
				targets = append(targets, prof.Country.Code)
			}
		}
		for _, code := range targets {
			i, ok := index[code]
			if !ok {
				return synth.Config{}, fmt.Errorf(
					"scenario: pack %s: market delta %d targets unknown country %q", p.Name, di, code)
			}
			applyMarketDelta(&profiles[i], d)
		}
	}
	cfg.Profiles = profiles
	return cfg, nil
}

func applyMarketDelta(prof *market.Profile, d MarketDelta) {
	if d.AccessPriceScale > 0 {
		prof.AccessPriceUSD *= d.AccessPriceScale
	}
	if d.UpgradeCostScale > 0 {
		prof.UpgradeCostPerMbps *= d.UpgradeCostScale
	}
	if d.SatelliteShareScale > 0 {
		prof.SatelliteShare *= d.SatelliteShareScale
	}
	if d.PriceScale > 0 {
		prof.PriceScale = d.PriceScale
	}
	if d.TierPriceCapUSD > 0 {
		prof.TierPriceCapUSD = d.TierPriceCapUSD
	}
	if d.CapScale > 0 {
		prof.CapScale = d.CapScale
	}
	if d.UncapAll {
		prof.UncapAll = true
	}
	if d.FiberAboveMbps > 0 {
		prof.FiberAboveMbps = d.FiberAboveMbps
	}
}
