package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/synth"
)

const minimalExpect = `"expect": [
  {"artifact": "Fig. 1", "checks": [
    {"name": "c", "path": "Capacity/Median", "op": "unchanged"}
  ]}
]`

func TestParsePackValidation(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string // substring; "" = valid
	}{
		{
			name: "minimal valid pack",
			doc:  `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]}, ` + minimalExpect + `}`,
		},
		{
			name:    "bad name",
			doc:     `{"name": "Not Valid!", "deltas": {"markets": [{"cap_scale": 2}]}, ` + minimalExpect + `}`,
			wantErr: "must match",
		},
		{
			name:    "no deltas",
			doc:     `{"name": "ok", "deltas": {}, ` + minimalExpect + `}`,
			wantErr: "no deltas",
		},
		{
			name:    "empty market delta",
			doc:     `{"name": "ok", "deltas": {"markets": [{"countries": ["US"]}]}, ` + minimalExpect + `}`,
			wantErr: "changes nothing",
		},
		{
			name:    "negative lever",
			doc:     `{"name": "ok", "deltas": {"markets": [{"cap_scale": -2}]}, ` + minimalExpect + `}`,
			wantErr: "negative cap_scale",
		},
		{
			name:    "no expectations",
			doc:     `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]}, "expect": []}`,
			wantErr: "no expectations",
		},
		{
			name: "unknown artifact",
			doc: `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]},
				"expect": [{"artifact": "Fig. 99", "checks": [{"name": "c", "path": "X", "op": "unchanged"}]}]}`,
			wantErr: `unknown artifact "Fig. 99"`,
		},
		{
			name: "extension artifact resolves",
			doc: `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]},
				"expect": [{"artifact": "Ext. A", "checks": [{"name": "c", "path": "CappedShare", "op": "unchanged"}]}]}`,
		},
		{
			name: "unnamed check",
			doc: `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]},
				"expect": [{"artifact": "Fig. 1", "checks": [{"path": "X", "op": "unchanged"}]}]}`,
			wantErr: "unnamed check",
		},
		{
			name: "duplicate check name",
			doc: `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]},
				"expect": [{"artifact": "Fig. 1", "checks": [
					{"name": "c", "path": "X", "op": "unchanged"},
					{"name": "c", "path": "Y", "op": "unchanged"}]}]}`,
			wantErr: "duplicate check",
		},
		{
			name: "malformed check rejected by golden",
			doc: `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]},
				"expect": [{"artifact": "Fig. 1", "checks": [{"name": "c", "path": "X", "op": "sideways"}]}]}`,
			wantErr: "unknown op",
		},
		{
			name:    "unknown field rejected",
			doc:     `{"name": "ok", "deltas": {"bogus": 1, "markets": [{"cap_scale": 2}]}, ` + minimalExpect + `}`,
			wantErr: "unknown field",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePack([]byte(tc.doc))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestLoadPackNameMustMatchStem(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "other.json")
	doc := `{"name": "ok", "deltas": {"markets": [{"cap_scale": 2}]}, ` + minimalExpect + `}`
	if err := os.WriteFile(file, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPack(file); err == nil || !strings.Contains(err.Error(), "filename stem") {
		t.Fatalf("want stem mismatch error, got %v", err)
	}
}

// The committed catalog must load, carry at least 8 packs, and cover every
// delta family the acceptance criteria name.
func TestCommittedCatalogCoversDeltaFamilies(t *testing.T) {
	packs, err := LoadDir("../../testdata/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(packs) < 8 {
		t.Fatalf("catalog has %d packs, want >= 8", len(packs))
	}
	families := map[string]bool{}
	for _, p := range packs {
		if c := p.Deltas.Config; c != nil {
			if c.NeedGrowth != nil || c.YearGrowth != nil {
				families["need-growth"] = true
			}
			if c.DisableQoE != nil && *c.DisableQoE {
				families["qoe"] = true
			}
		}
		for _, m := range p.Deltas.Markets {
			if m.PriceScale != 0 || m.TierPriceCapUSD != 0 || m.AccessPriceScale > 1 {
				families["price"] = true
			}
			if (m.AccessPriceScale > 0 && m.AccessPriceScale < 1) ||
				(m.UpgradeCostScale > 0 && m.UpgradeCostScale < 1) {
				families["subsidy"] = true
			}
			if m.CapScale != 0 || m.UncapAll {
				families["cap-policy"] = true
			}
			if m.FiberAboveMbps != 0 || m.SatelliteShareScale != 0 {
				families["tech-mix"] = true
			}
		}
	}
	for _, f := range []string{"price", "subsidy", "cap-policy", "tech-mix", "need-growth", "qoe"} {
		if !families[f] {
			t.Errorf("no committed pack exercises the %s delta family", f)
		}
	}
}

func TestApplyDeltas(t *testing.T) {
	ng := 1.5
	dq := true
	p := &Pack{
		Name: "t",
		Deltas: Deltas{
			Config: &ConfigDelta{NeedGrowth: &ng, DisableQoE: &dq},
			Markets: []MarketDelta{
				{Countries: []string{"BW"}, TierPriceCapUSD: 60, AccessPriceScale: 0.5},
				{CapScale: 2}, // all countries
			},
		},
	}
	base := synth.Config{Users: 100}
	cfg, err := p.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NeedGrowth != 1.5 || !cfg.DisableQoE {
		t.Fatalf("config deltas not applied: %+v", cfg)
	}
	if base.Profiles != nil {
		t.Fatal("base config mutated")
	}
	var bw, us market.Profile
	for _, prof := range cfg.Profiles {
		switch prof.Country.Code {
		case "BW":
			bw = prof
		case "US":
			us = prof
		}
	}
	want, _ := market.FindProfile("BW")
	if bw.TierPriceCapUSD != 60 || bw.AccessPriceUSD != want.AccessPriceUSD*0.5 {
		t.Fatalf("BW delta not applied: %+v", bw)
	}
	if bw.CapScale != 2 || us.CapScale != 2 {
		t.Fatal("all-countries delta not applied to both BW and US")
	}
	if us.TierPriceCapUSD != 0 {
		t.Fatal("country-scoped delta leaked to US")
	}

	bad := &Pack{Name: "t", Deltas: Deltas{Markets: []MarketDelta{
		{Countries: []string{"XX"}, CapScale: 2},
	}}}
	if _, err := bad.Apply(base); err == nil || !strings.Contains(err.Error(), "unknown country") {
		t.Fatalf("want unknown-country error, got %v", err)
	}
}
