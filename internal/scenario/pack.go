// Package scenario runs declarative counterfactual worlds against the
// reproduction registry. A scenario pack is a JSON file declaring (a) a set
// of deltas on top of the baseline world — synth.Config overrides and
// per-country market interventions — and (b) an expectations block of
// golden assertions, including the differential ops that compare scenario
// artifacts against the baseline world at the same seed. The runner builds
// baseline + N counterfactual worlds concurrently, evaluates every
// expectation at every seed, and reports opa-test-style: one PASS/FAIL line
// per assertion, a summary count, exit 1 on any FAIL.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/experiments"
	"github.com/nwca/broadband/internal/golden"
)

// Pack is one declarative counterfactual scenario.
type Pack struct {
	// Name identifies the pack in reports; it must match ^[a-z0-9-]+$ and,
	// for packs loaded from disk, the filename stem.
	Name string `json:"name"`
	// Description says what real-world intervention the pack models and
	// which part of the paper grounds the expectations.
	Description string `json:"description,omitempty"`
	// Deltas transform the baseline world into the counterfactual.
	Deltas Deltas `json:"deltas"`
	// Expect lists the assertions, grouped by registry artifact.
	Expect []Expectation `json:"expect"`
}

// Deltas is the world transformation of a pack. A pack with zero deltas is
// rejected at load time: a counterfactual that changes nothing tests
// nothing the golden gate does not already cover.
type Deltas struct {
	Config  *ConfigDelta  `json:"config,omitempty"`
	Markets []MarketDelta `json:"markets,omitempty"`
}

// ConfigDelta overrides synth.Config fields. Pointer fields distinguish
// "leave the baseline value" (null/absent) from an explicit zero, which
// Config validation will reject where it is invalid.
type ConfigDelta struct {
	// YearGrowth / NeedGrowth sweep the demand-regime factors (values in
	// (0,1] model flat or shrinking regimes).
	YearGrowth *float64 `json:"year_growth,omitempty"`
	NeedGrowth *float64 `json:"need_growth,omitempty"`
	// Years replaces the cohort-year list.
	Years []int `json:"years,omitempty"`
	// DisableQoE is the existing quality→demand ablation.
	DisableQoE *bool `json:"disable_qoe,omitempty"`
}

// MarketDelta applies one intervention to the market profiles of the
// selected countries. Scale fields multiply the profile value (zero =
// leave alone); the policy levers map one-to-one onto market.Profile's
// post-draw policy fields, so they never perturb the catalog RNG stream.
type MarketDelta struct {
	// Countries selects profiles by ISO code; empty selects every country.
	Countries []string `json:"countries,omitempty"`

	// Profile scalars (applied before catalog generation; RNG-neutral
	// because they change no draw decision, only priced values).
	AccessPriceScale float64 `json:"access_price_scale,omitempty"`
	UpgradeCostScale float64 `json:"upgrade_cost_scale,omitempty"`
	// SatelliteShareScale scales the fraction of lines on satellite/
	// fixed-wireless technology — the tech-mix lever with a measurable
	// quality consequence (satellite lines carry the long-RTT, bursty-loss
	// tail of Fig. 1).
	SatelliteShareScale float64 `json:"satellite_share_scale,omitempty"`

	// Post-draw catalog policy levers (see market.Profile).
	PriceScale      float64 `json:"price_scale,omitempty"`
	TierPriceCapUSD float64 `json:"tier_price_cap_usd,omitempty"`
	CapScale        float64 `json:"cap_scale,omitempty"`
	UncapAll        bool    `json:"uncap_all,omitempty"`
	FiberAboveMbps  float64 `json:"fiber_above_mbps,omitempty"`
}

func (d MarketDelta) empty() bool {
	return d.AccessPriceScale == 0 && d.UpgradeCostScale == 0 &&
		d.SatelliteShareScale == 0 && d.PriceScale == 0 &&
		d.TierPriceCapUSD == 0 && d.CapScale == 0 &&
		!d.UncapAll && d.FiberAboveMbps == 0
}

// Expectation is the check set against one registry (or extension)
// artifact of the scenario world. Differential checks additionally read
// the same artifact from the baseline world at the same seed.
type Expectation struct {
	// Artifact is a registry or extension ID ("Fig. 7", "Ext. A").
	Artifact string         `json:"artifact"`
	Checks   []golden.Check `json:"checks"`
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate rejects malformed packs: bad names, unknown artifacts, empty
// deltas or expectations, and checks golden would refuse.
func (p *Pack) Validate() error {
	if !nameRe.MatchString(p.Name) {
		return fmt.Errorf("pack name %q must match %s", p.Name, nameRe)
	}
	if p.Deltas.Config == nil && len(p.Deltas.Markets) == 0 {
		return fmt.Errorf("pack %s: no deltas — a scenario must change the world", p.Name)
	}
	for i, m := range p.Deltas.Markets {
		if m.empty() {
			return fmt.Errorf("pack %s: market delta %d changes nothing", p.Name, i)
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"access_price_scale", m.AccessPriceScale},
			{"upgrade_cost_scale", m.UpgradeCostScale},
			{"satellite_share_scale", m.SatelliteShareScale},
			{"price_scale", m.PriceScale},
			{"tier_price_cap_usd", m.TierPriceCapUSD},
			{"cap_scale", m.CapScale},
			{"fiber_above_mbps", m.FiberAboveMbps},
		} {
			if f.v < 0 {
				return fmt.Errorf("pack %s: market delta %d: negative %s", p.Name, i, f.name)
			}
		}
	}
	if len(p.Expect) == 0 {
		return fmt.Errorf("pack %s: no expectations", p.Name)
	}
	seen := make(map[string]bool)
	for _, e := range p.Expect {
		if _, ok := findArtifact(e.Artifact); !ok {
			return fmt.Errorf("pack %s: unknown artifact %q", p.Name, e.Artifact)
		}
		if len(e.Checks) == 0 {
			return fmt.Errorf("pack %s: artifact %s: no checks", p.Name, e.Artifact)
		}
		for _, c := range e.Checks {
			if c.Name == "" {
				return fmt.Errorf("pack %s: artifact %s: unnamed check", p.Name, e.Artifact)
			}
			key := e.Artifact + "\x00" + c.Name
			if seen[key] {
				return fmt.Errorf("pack %s: artifact %s: duplicate check %q", p.Name, e.Artifact, c.Name)
			}
			seen[key] = true
			if err := c.Validate(); err != nil {
				return fmt.Errorf("pack %s: artifact %s, check %q: %w", p.Name, e.Artifact, c.Name, err)
			}
		}
	}
	return nil
}

// findArtifact resolves an ID against the registry, then the extensions.
func findArtifact(id string) (experiments.Entry, bool) {
	if e, ok := experiments.Find(id); ok {
		return e, true
	}
	return experiments.FindExtension(id)
}

// artifacts returns the artifact IDs the pack reads, deduplicated in
// first-reference order.
func (p *Pack) artifacts() []string {
	var ids []string
	seen := make(map[string]bool)
	for _, e := range p.Expect {
		if !seen[e.Artifact] {
			seen[e.Artifact] = true
			ids = append(ids, e.Artifact)
		}
	}
	return ids
}

// ParsePack decodes and validates one pack document.
func ParsePack(data []byte) (*Pack, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Pack
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &p, nil
}

// LoadPack reads one pack file. The filename stem must equal the declared
// name, so reports, -run filters and the files on disk agree.
func LoadPack(file string) (*Pack, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	p, err := ParsePack(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	if stem := strings.TrimSuffix(filepath.Base(file), ".json"); stem != p.Name {
		return nil, fmt.Errorf("%s: pack name %q does not match filename stem %q", file, p.Name, stem)
	}
	return p, nil
}

// LoadDir loads every *.json pack in a directory, sorted by name.
func LoadDir(dir string) ([]*Pack, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("scenario: no packs in %s", dir)
	}
	packs := make([]*Pack, 0, len(matches))
	names := make(map[string]bool)
	for _, m := range matches {
		p, err := LoadPack(m)
		if err != nil {
			return nil, err
		}
		if names[p.Name] {
			return nil, fmt.Errorf("scenario: duplicate pack name %q", p.Name)
		}
		names[p.Name] = true
		packs = append(packs, p)
	}
	return packs, nil
}
