package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/fsx"
	"github.com/nwca/broadband/internal/synth"
)

// Exit codes, following the repo's CLI convention: 1 is a failed
// expectation (the gate tripped), 2 is a harness error (bad pack, build
// failure, bad flags), 130 an interrupted run.
const (
	ExitOK      = 0
	ExitFail    = 1
	ExitErr     = 2
	ExitSignal  = cli.ExitInterrupted
	defaultDir  = "testdata/scenarios"
	defaultSeed = "20140705,7"
)

// Main is the bbscenario entry point, factored for in-process testing: the
// command wrapper passes os.Args[1:] and the real streams, tests pass
// fabricated ones and assert on the exit code.
func Main(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbscenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all      = fs.Bool("all", false, "run every pack in -dir (otherwise name pack files as arguments)")
		dir      = fs.String("dir", defaultDir, "scenario pack directory for -all")
		run      = fs.String("run", "", "only run packs whose name matches this regexp")
		seeds    = fs.String("seeds", defaultSeed, "comma-separated world seeds to assert at")
		users    = fs.Int("users", 1000, "end-host users per primary year")
		fcc      = fs.Int("fcc", 250, "US gateway-panel users")
		days     = fs.Int("days", 2, "observation days per user")
		switches = fs.Int("switches", 200, "service-switch records")
		minPer   = fs.Int("minper", 10, "per-country population floor")
		workers  = fs.Int("workers", 0, "world-build workers (0 = GOMAXPROCS)")
		jsonOut  = fs.String("json", "", "write the machine-readable report to this file (atomic)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbscenario [flags] [pack.json ...]\n\n"+
			"Runs declarative counterfactual scenario packs against the registry:\n"+
			"baseline + N delta worlds per seed, one PASS/FAIL line per expectation.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitErr
	}

	var packs []*Pack
	var err error
	switch {
	case *all && fs.NArg() > 0:
		fmt.Fprintln(stderr, "bbscenario: -all and explicit pack files are mutually exclusive")
		return ExitErr
	case *all:
		packs, err = LoadDir(*dir)
	case fs.NArg() == 0:
		fmt.Fprintln(stderr, "bbscenario: nothing to run: pass -all or pack files")
		return ExitErr
	default:
		for _, f := range fs.Args() {
			p, perr := LoadPack(f)
			if perr != nil {
				err = perr
				break
			}
			packs = append(packs, p)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "bbscenario: %v\n", err)
		return ExitErr
	}

	if *run != "" {
		re, rerr := regexp.Compile(*run)
		if rerr != nil {
			fmt.Fprintf(stderr, "bbscenario: bad -run pattern: %v\n", rerr)
			return ExitErr
		}
		kept := packs[:0]
		for _, p := range packs {
			if re.MatchString(p.Name) {
				kept = append(kept, p)
			}
		}
		packs = kept
		if len(packs) == 0 {
			fmt.Fprintf(stderr, "bbscenario: no pack matches -run %q\n", *run)
			return ExitErr
		}
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintf(stderr, "bbscenario: %v\n", err)
		return ExitErr
	}

	opt := Options{
		Base: synth.Config{
			Users:         *users,
			FCCUsers:      *fcc,
			Days:          *days,
			SwitchTarget:  *switches,
			MinPerCountry: *minPer,
		},
		Seeds:   seedList,
		Workers: *workers,
	}
	rep, err := Run(ctx, packs, opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "bbscenario: interrupted")
			return ExitSignal
		}
		fmt.Fprintf(stderr, "bbscenario: %v\n", err)
		return ExitErr
	}
	rep.Render(stdout)
	if *jsonOut != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			fmt.Fprintf(stderr, "bbscenario: %v\n", merr)
			return ExitErr
		}
		if werr := fsx.RetryWrite(context.Background(), fsx.RetryPolicy{}, *jsonOut, append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(stderr, "bbscenario: %v\n", werr)
			return ExitErr
		}
	}
	if !rep.OK() {
		return ExitFail
	}
	return ExitOK
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", s)
	}
	return out, nil
}
