package scenario

import (
	"context"
	"fmt"

	"github.com/nwca/broadband/internal/golden"
	"github.com/nwca/broadband/internal/par"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/synth"
)

// Options parameterizes a scenario run.
type Options struct {
	// Base is the baseline world config. Its Seed is ignored; every world
	// is built once per entry of Seeds.
	Base synth.Config
	// Seeds lists the seeds every pack asserts at (at least one).
	Seeds []uint64
	// Workers bounds the world-build pool (0 = GOMAXPROCS). The report is
	// byte-identical across worker counts: workers only reorder the
	// builds, never the evaluation.
	Workers int
}

// Outcome is one evaluated assertion at one seed.
type Outcome struct {
	Seed     uint64 `json:"seed"`
	Artifact string `json:"artifact"`
	Check    string `json:"check"`
	Op       string `json:"op"`
	Pass     bool   `json:"pass"`
	// Msg explains a failure (empty on pass).
	Msg string `json:"msg,omitempty"`
}

// Name is the display label of the assertion: pack/artifact-slug/check.
func (o Outcome) Name(pack string) string {
	return fmt.Sprintf("%s/%s/%s", pack, golden.Slug(o.Artifact), o.Check)
}

// PackResult collects the outcomes of one pack across all seeds.
type PackResult struct {
	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Outcomes    []Outcome `json:"outcomes"`
	Passed      int       `json:"passed"`
	Failed      int       `json:"failed"`
}

// WorldScale echoes the world dimensions a report was computed at. It
// carries no timings or host data: the report must be byte-identical
// across machines and worker counts.
type WorldScale struct {
	Users         int `json:"users"`
	FCCUsers      int `json:"fcc_users"`
	Days          int `json:"days"`
	SwitchTarget  int `json:"switch_target"`
	MinPerCountry int `json:"min_per_country"`
}

// Report is the full run outcome, rendered by Render and serialized by the
// -json flag.
type Report struct {
	Seeds  []uint64     `json:"seeds"`
	World  WorldScale   `json:"world"`
	Packs  []PackResult `json:"packs"`
	Passed int          `json:"passed"`
	Failed int          `json:"failed"`
}

// OK reports whether every assertion passed.
func (r *Report) OK() bool { return r.Failed == 0 }

// Run builds the baseline and every pack's counterfactual world at every
// seed through one worker pool, computes the referenced registry
// artifacts, and evaluates all expectations. The outcome order is fixed —
// packs in input order, expectations in declaration order, seeds in input
// order — so the report is deterministic whatever the worker count.
func Run(ctx context.Context, packs []*Pack, opt Options) (*Report, error) {
	if len(packs) == 0 {
		return nil, fmt.Errorf("scenario: no packs to run")
	}
	if len(opt.Seeds) == 0 {
		return nil, fmt.Errorf("scenario: no seeds")
	}

	// The baseline world serves every differential check, so it computes
	// the union of all referenced artifacts; each scenario world computes
	// only its own.
	baseIDs := unionArtifacts(packs)

	// One job per (world, seed): index 0 is the baseline, 1..P the packs.
	type job struct {
		cfg  synth.Config
		ids  []string
		vals map[string]*golden.Value
	}
	worlds := 1 + len(packs)
	jobs := make([]job, worlds*len(opt.Seeds))
	for pi := 0; pi < worlds; pi++ {
		cfg, ids := opt.Base, baseIDs
		if pi > 0 {
			var err error
			if cfg, err = packs[pi-1].Apply(opt.Base); err != nil {
				return nil, err
			}
			ids = packs[pi-1].artifacts()
		}
		cfg.Workers = 1 // parallelism lives in the job pool, not the builds
		for si, seed := range opt.Seeds {
			cfg.Seed = seed
			jobs[pi*len(opt.Seeds)+si] = job{cfg: cfg, ids: ids}
		}
	}

	err := par.ForNCtx(ctx, opt.Workers, len(jobs), func(i int) error {
		j := &jobs[i]
		w, err := synth.BuildCtx(ctx, j.cfg)
		if err != nil {
			return fmt.Errorf("scenario: world (seed %d): %w", j.cfg.Seed, err)
		}
		j.vals = make(map[string]*golden.Value, len(j.ids))
		for _, id := range j.ids {
			e, ok := findArtifact(id)
			if !ok {
				return fmt.Errorf("scenario: unknown artifact %q", id)
			}
			rep, err := e.Run(&w.Data, randx.New(j.cfg.Seed).Split(id))
			if err != nil {
				return fmt.Errorf("scenario: %s (seed %d): %w", id, j.cfg.Seed, err)
			}
			v, err := golden.ToValue(rep)
			if err != nil {
				return fmt.Errorf("scenario: %s (seed %d): %w", id, j.cfg.Seed, err)
			}
			j.vals[id] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	base := opt.Base.WithDefaults()
	rep := &Report{
		Seeds: append([]uint64(nil), opt.Seeds...),
		World: WorldScale{
			Users:         base.Users,
			FCCUsers:      base.FCCUsers,
			Days:          base.Days,
			SwitchTarget:  base.SwitchTarget,
			MinPerCountry: base.MinPerCountry,
		},
	}
	for pi, p := range packs {
		pr := PackResult{Name: p.Name, Description: p.Description}
		for _, e := range p.Expect {
			for _, c := range e.Checks {
				for si, seed := range opt.Seeds {
					baseVals := jobs[si].vals // world 0 = baseline
					scenVals := jobs[(pi+1)*len(opt.Seeds)+si].vals
					msg := evalOne(baseVals[e.Artifact], scenVals[e.Artifact], c)
					o := Outcome{
						Seed: seed, Artifact: e.Artifact, Check: c.Name,
						Op: c.Op, Pass: msg == "", Msg: msg,
					}
					if o.Pass {
						pr.Passed++
					} else {
						pr.Failed++
					}
					pr.Outcomes = append(pr.Outcomes, o)
				}
			}
		}
		rep.Packs = append(rep.Packs, pr)
		rep.Passed += pr.Passed
		rep.Failed += pr.Failed
	}
	return rep, nil
}

// evalOne evaluates a single check: differential ops against the baseline
// tree, plain golden ops against the scenario tree alone.
func evalOne(base, scen *golden.Value, c golden.Check) string {
	if c.Differential() {
		return golden.EvalDiffCheck(base, scen, c)
	}
	if viols := golden.EvalChecks(scen, []golden.Check{c}, false); len(viols) > 0 {
		return viols[0].Msg
	}
	return ""
}

// unionArtifacts merges the artifact lists of all packs, deduplicated in
// first-reference order.
func unionArtifacts(packs []*Pack) []string {
	var ids []string
	seen := make(map[string]bool)
	for _, p := range packs {
		for _, id := range p.artifacts() {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	return ids
}
