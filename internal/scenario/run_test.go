package scenario

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/nwca/broadband/internal/synth"
)

// smokeWorld is the world scale the committed catalog is verified at — the
// same scale the CI gate runs (cmd/bbscenario defaults).
var smokeWorld = synth.Config{
	Users: 1000, FCCUsers: 250, Days: 2, SwitchTarget: 200, MinPerCountry: 10,
}

// The committed catalog must pass in full, at both gate seeds, through the
// parallel pool. Under -race this is also the scenario runner's
// race-detection workout: ~22 worlds built and evaluated concurrently.
func TestCommittedCatalogPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog at two seeds is minutes under -race")
	}
	packs, err := LoadDir("../../testdata/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), packs, Options{
		Base:  smokeWorld,
		Seeds: []uint64{20140705, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, p := range rep.Packs {
			for _, o := range p.Outcomes {
				if !o.Pass {
					t.Errorf("%s @ seed %d: %s", o.Name(p.Name), o.Seed, o.Msg)
				}
			}
		}
		t.Fatalf("committed catalog failed: %d of %d assertions", rep.Failed, rep.Passed+rep.Failed)
	}
	if rep.Passed < 8 {
		t.Fatalf("suspiciously few assertions: %d", rep.Passed)
	}
}

// The report is a pure function of (packs, config, seeds): worker counts
// must not leak into it.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds six worlds")
	}
	packs := []*Pack{
		mustLoad(t, "../../testdata/scenarios/cap-raise.json"),
		mustLoad(t, "../../testdata/scenarios/need-flat.json"),
	}
	opt := Options{Base: smokeWorld, Seeds: []uint64{7}}
	opt.Workers = 1
	seq, err := Run(context.Background(), packs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	par, err := Run(context.Background(), packs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("report differs between 1 and 4 workers")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	packs := []*Pack{mustLoad(t, "../../testdata/scenarios/cap-raise.json")}
	_, err := Run(ctx, packs, Options{Base: smokeWorld, Seeds: []uint64{7}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{Seeds: []uint64{1}}); err == nil {
		t.Fatal("want error for no packs")
	}
	packs := []*Pack{mustLoad(t, "../../testdata/scenarios/cap-raise.json")}
	if _, err := Run(context.Background(), packs, Options{}); err == nil {
		t.Fatal("want error for no seeds")
	}
}

func mustLoad(t *testing.T, file string) *Pack {
	t.Helper()
	p, err := LoadPack(file)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
