package unit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseBitrate parses a human-readable bitrate such as "7.4Mbps", "512 kbps"
// or "1024" (bare numbers are bits per second). Unit suffixes are matched
// case-insensitively and an optional space before the suffix is allowed.
func ParseBitrate(s string) (Bitrate, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("unit: empty bitrate")
	}
	scale := BitPerSecond
	lower := strings.ToLower(t)
	for _, u := range []struct {
		suffix string
		scale  Bitrate
	}{
		{"gbps", Gbps}, {"gbit/s", Gbps},
		{"mbps", Mbps}, {"mbit/s", Mbps},
		{"kbps", Kbps}, {"kbit/s", Kbps},
		{"bps", BitPerSecond}, {"bit/s", BitPerSecond},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			scale = u.scale
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("unit: bad bitrate %q: %w", s, err)
	}
	r := Bitrate(v) * scale
	if !r.IsValid() {
		return 0, fmt.Errorf("unit: bitrate %q out of range", s)
	}
	return r, nil
}

// ParseByteSize parses a human-readable data volume such as "250GB",
// "1.5 TB" or "1048576" (bare numbers are bytes). SI scales are used, as in
// ISP traffic caps.
func ParseByteSize(s string) (ByteSize, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("unit: empty byte size")
	}
	scale := Byte
	lower := strings.ToLower(t)
	for _, u := range []struct {
		suffix string
		scale  ByteSize
	}{
		{"tb", TB}, {"gb", GB}, {"mb", MB}, {"kb", KB}, {"b", Byte},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			scale = u.scale
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("unit: bad byte size %q: %w", s, err)
	}
	if v < 0 || math.IsNaN(v) {
		return 0, fmt.Errorf("unit: negative byte size %q", s)
	}
	// Converting a float beyond int64 range is implementation-defined; the
	// bound check keeps ByteSize(v*scale) well-defined for any input text.
	b := v * float64(scale)
	if b >= math.MaxInt64 {
		return 0, fmt.Errorf("unit: byte size %q out of range", s)
	}
	return ByteSize(b), nil
}
