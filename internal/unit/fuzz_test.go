package unit

import (
	"math"
	"testing"
)

// FuzzParseUnit drives both human-readable parsers with arbitrary text.
// The contract under fuzz: never panic, never accept a value the rest of
// the pipeline cannot hold (negative, NaN, out of range), and keep the
// formatter/parser pair coherent — the String rendering of any accepted
// value must re-parse to nearly the same quantity.
func FuzzParseUnit(f *testing.F) {
	// Valid forms from the table tests plus every documented error path.
	for _, s := range []string{
		"7.4Mbps", "512 kbps", "1 Gbps", "100 Mbit/s", "2048", "  56 kbps ",
		"0.5 MBPS", "250GB", "1.5 TB", "100 mb", "2 kB",
		"", "fast", "-3 Mbps", "NaN", "1e400 Mbps", "big", "-1GB",
		"inf TB", "+Inf", "9e30 GB", "0x1p10 kbps", "1_000", ".", "- 1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if r, err := ParseBitrate(s); err == nil {
			if !r.IsValid() {
				t.Fatalf("ParseBitrate(%q) accepted invalid rate %v", s, float64(r))
			}
			back, err := ParseBitrate(r.String())
			if err != nil {
				t.Fatalf("ParseBitrate(%q).String() = %q does not re-parse: %v", s, r.String(), err)
			}
			// String keeps 2-3 significant decimals per scale step.
			if math.Abs(float64(back-r)) > 0.05*float64(r)+0.5 {
				t.Fatalf("ParseBitrate(%q) = %v bps, reparsed %v bps", s, float64(r), float64(back))
			}
		}
		if b, err := ParseByteSize(s); err == nil {
			if b < 0 {
				t.Fatalf("ParseByteSize(%q) accepted negative size %d", s, b.Bytes())
			}
			back, err := ParseByteSize(b.String())
			if err != nil {
				t.Fatalf("ParseByteSize(%q).String() = %q does not re-parse: %v", s, b.String(), err)
			}
			if math.Abs(float64(back-b)) > 0.05*float64(b)+1 {
				t.Fatalf("ParseByteSize(%q) = %d B, reparsed %d B", s, b.Bytes(), back.Bytes())
			}
		}
	})
}
