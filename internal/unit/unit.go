// Package unit provides strongly typed quantities used throughout the
// broadband measurement and market analysis pipeline: bitrates, byte
// volumes, packet-loss rates and purchasing-power-normalized money.
//
// The paper's analysis constantly mixes kbps/Mbps scales, monthly byte
// volumes, loss percentages and per-country price levels; carrying these as
// bare float64s is how unit errors creep into measurement code. Each type
// here is a thin named float/int with explicit constructors, accessors and
// String methods, so values render unambiguously in tables and logs.
package unit

import (
	"fmt"
	"math"
)

// Bitrate is a data rate in bits per second. It is the canonical unit for
// link capacities, throughput measurements and usage (demand) figures.
type Bitrate float64

// Common bitrate scales.
const (
	BitPerSecond Bitrate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e6 * BitPerSecond
	Gbps                 = 1e9 * BitPerSecond
)

// KbpsOf constructs a Bitrate from a value expressed in kilobits per second.
func KbpsOf(v float64) Bitrate { return Bitrate(v) * Kbps }

// MbpsOf constructs a Bitrate from a value expressed in megabits per second.
func MbpsOf(v float64) Bitrate { return Bitrate(v) * Mbps }

// Kbps reports the rate in kilobits per second.
func (r Bitrate) Kbps() float64 { return float64(r) / float64(Kbps) }

// Mbps reports the rate in megabits per second.
func (r Bitrate) Mbps() float64 { return float64(r) / float64(Mbps) }

// BitsPerSecond reports the raw bits-per-second value.
func (r Bitrate) BitsPerSecond() float64 { return float64(r) }

// IsValid reports whether the rate is finite and non-negative.
func (r Bitrate) IsValid() bool {
	return !math.IsNaN(float64(r)) && !math.IsInf(float64(r), 0) && r >= 0
}

// String renders the rate with an auto-selected scale, e.g. "7.4 Mbps".
func (r Bitrate) String() string {
	v := float64(r)
	switch {
	case math.Abs(v) >= float64(Gbps):
		return fmt.Sprintf("%.2f Gbps", v/float64(Gbps))
	case math.Abs(v) >= float64(Mbps):
		return fmt.Sprintf("%.2f Mbps", v/float64(Mbps))
	case math.Abs(v) >= float64(Kbps):
		return fmt.Sprintf("%.1f kbps", v/float64(Kbps))
	default:
		return fmt.Sprintf("%.0f bps", v)
	}
}

// ByteSize is a volume of data in bytes, used for interval byte counters and
// monthly traffic caps.
type ByteSize int64

// Common byte-volume scales (SI, matching how ISPs advertise caps).
const (
	Byte ByteSize = 1
	KB            = 1e3 * Byte
	MB            = 1e6 * Byte
	GB            = 1e9 * Byte
	TB            = 1e12 * Byte
)

// Bytes reports the size as a raw byte count.
func (s ByteSize) Bytes() int64 { return int64(s) }

// MB reports the size in (SI) megabytes.
func (s ByteSize) MB() float64 { return float64(s) / float64(MB) }

// GB reports the size in (SI) gigabytes.
func (s ByteSize) GB() float64 { return float64(s) / float64(GB) }

// String renders the size with an auto-selected scale, e.g. "1.50 GB".
func (s ByteSize) String() string {
	v := float64(s)
	switch {
	case math.Abs(v) >= float64(TB):
		return fmt.Sprintf("%.2f TB", v/float64(TB))
	case math.Abs(v) >= float64(GB):
		return fmt.Sprintf("%.2f GB", v/float64(GB))
	case math.Abs(v) >= float64(MB):
		return fmt.Sprintf("%.2f MB", v/float64(MB))
	case math.Abs(v) >= float64(KB):
		return fmt.Sprintf("%.1f kB", v/float64(KB))
	default:
		return fmt.Sprintf("%d B", int64(s))
	}
}

// RateOver converts a byte volume transferred over the given duration in
// seconds to the average Bitrate it represents.
func (s ByteSize) RateOver(seconds float64) Bitrate {
	if seconds <= 0 {
		return 0
	}
	return Bitrate(float64(s) * 8 / seconds)
}

// VolumeAt reports the byte volume produced by sustaining rate r for the
// given number of seconds, rounded down to whole bytes.
func VolumeAt(r Bitrate, seconds float64) ByteSize {
	if seconds <= 0 || r <= 0 {
		return 0
	}
	return ByteSize(float64(r) * seconds / 8)
}

// LossRate is a packet-loss fraction in [0, 1]. The paper reports loss in
// percent; use Percent for display and FromPercent when ingesting survey or
// NDT values expressed that way.
type LossRate float64

// LossFromPercent converts a percentage (e.g. 1.5 for 1.5%) to a LossRate.
func LossFromPercent(p float64) LossRate { return LossRate(p / 100) }

// Percent reports the loss rate in percent.
func (l LossRate) Percent() float64 { return float64(l) * 100 }

// IsValid reports whether the loss rate lies in [0, 1].
func (l LossRate) IsValid() bool {
	return !math.IsNaN(float64(l)) && l >= 0 && l <= 1
}

// String renders the loss rate in percent, e.g. "0.120%".
func (l LossRate) String() string { return fmt.Sprintf("%.3g%%", l.Percent()) }

// USD is an amount of money in US dollars, already normalized by purchasing
// power parity (PPP) where the pipeline requires it. All cross-country price
// comparisons in the paper are made in USD PPP; keeping a dedicated type
// makes it obvious which figures have been normalized.
type USD float64

// Dollars reports the raw dollar amount.
func (m USD) Dollars() float64 { return float64(m) }

// String renders the amount as dollars and cents, e.g. "$53.00".
func (m USD) String() string {
	if m < 0 {
		return fmt.Sprintf("-$%.2f", -float64(m))
	}
	return fmt.Sprintf("$%.2f", float64(m))
}

// PerMbps is a price slope in USD per Mbps per month, the unit of the
// paper's "cost of increasing capacity" analysis (Sec. 6).
type PerMbps float64

// String renders the slope, e.g. "$0.52/Mbps".
func (p PerMbps) String() string { return fmt.Sprintf("$%.2f/Mbps", float64(p)) }
