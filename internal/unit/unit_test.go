package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitrateScales(t *testing.T) {
	r := MbpsOf(7.4)
	if got := r.Kbps(); math.Abs(got-7400) > 1e-9 {
		t.Errorf("Kbps() = %v, want 7400", got)
	}
	if got := r.Mbps(); math.Abs(got-7.4) > 1e-12 {
		t.Errorf("Mbps() = %v, want 7.4", got)
	}
	if got := KbpsOf(512).BitsPerSecond(); got != 512e3 {
		t.Errorf("KbpsOf(512) = %v bps, want 512000", got)
	}
}

func TestBitrateString(t *testing.T) {
	cases := []struct {
		r    Bitrate
		want string
	}{
		{0, "0 bps"},
		{500, "500 bps"},
		{KbpsOf(95), "95.0 kbps"},
		{MbpsOf(7.4), "7.40 Mbps"},
		{MbpsOf(2500), "2.50 Gbps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Bitrate(%v).String() = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestBitrateIsValid(t *testing.T) {
	if !MbpsOf(1).IsValid() {
		t.Error("1 Mbps should be valid")
	}
	if Bitrate(-1).IsValid() {
		t.Error("negative bitrate should be invalid")
	}
	if Bitrate(math.NaN()).IsValid() {
		t.Error("NaN bitrate should be invalid")
	}
	if Bitrate(math.Inf(1)).IsValid() {
		t.Error("Inf bitrate should be invalid")
	}
}

func TestByteSizeScales(t *testing.T) {
	s := 3 * GB / 2
	if got := s.GB(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("GB() = %v, want 1.5", got)
	}
	if got := (250 * MB).MB(); got != 250 {
		t.Errorf("MB() = %v, want 250", got)
	}
	if got := (42 * Byte).String(); got != "42 B" {
		t.Errorf("String() = %q, want %q", got, "42 B")
	}
	if got := (2 * TB).String(); got != "2.00 TB" {
		t.Errorf("String() = %q, want %q", got, "2.00 TB")
	}
}

func TestRateVolumeRoundTrip(t *testing.T) {
	// 1 Mbps over 80 seconds is exactly 10 MB.
	v := VolumeAt(MbpsOf(1), 80)
	if v != 10*MB {
		t.Fatalf("VolumeAt = %v, want 10 MB", v)
	}
	back := v.RateOver(80)
	if math.Abs(back.Mbps()-1) > 1e-9 {
		t.Errorf("RateOver = %v, want 1 Mbps", back)
	}
}

func TestRateOverZeroDuration(t *testing.T) {
	if got := GB.RateOver(0); got != 0 {
		t.Errorf("RateOver(0) = %v, want 0", got)
	}
	if got := VolumeAt(MbpsOf(10), -5); got != 0 {
		t.Errorf("VolumeAt(-5s) = %v, want 0", got)
	}
}

func TestRateVolumeProperty(t *testing.T) {
	// For any positive rate and duration, converting to a volume and back
	// recovers the rate to within quantization error of one byte.
	f := func(rMbps, secs float64) bool {
		rMbps = 0.001 + math.Mod(math.Abs(rMbps), 1000)
		secs = 1 + math.Mod(math.Abs(secs), 10000)
		r := MbpsOf(rMbps)
		back := VolumeAt(r, secs).RateOver(secs)
		quant := Bitrate(8 / secs) // one byte of rounding
		return math.Abs(float64(back-r)) <= float64(quant)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossRate(t *testing.T) {
	l := LossFromPercent(1.5)
	if math.Abs(float64(l)-0.015) > 1e-12 {
		t.Errorf("LossFromPercent(1.5) = %v, want 0.015", float64(l))
	}
	if math.Abs(l.Percent()-1.5) > 1e-12 {
		t.Errorf("Percent() = %v, want 1.5", l.Percent())
	}
	if !l.IsValid() {
		t.Error("1.5%% loss should be valid")
	}
	if LossRate(1.2).IsValid() || LossRate(-0.1).IsValid() || LossRate(math.NaN()).IsValid() {
		t.Error("out-of-range loss rates should be invalid")
	}
}

func TestMoneyString(t *testing.T) {
	if got := USD(53).String(); got != "$53.00" {
		t.Errorf("USD(53) = %q", got)
	}
	if got := USD(-1.5).String(); got != "-$1.50" {
		t.Errorf("USD(-1.5) = %q", got)
	}
	if got := PerMbps(0.52).String(); got != "$0.52/Mbps" {
		t.Errorf("PerMbps(0.52) = %q", got)
	}
}

func TestParseBitrate(t *testing.T) {
	cases := []struct {
		in   string
		want Bitrate
	}{
		{"7.4Mbps", MbpsOf(7.4)},
		{"512 kbps", KbpsOf(512)},
		{"1 Gbps", Gbps},
		{"100 Mbit/s", MbpsOf(100)},
		{"2048", 2048},
		{"  56 kbps ", KbpsOf(56)},
		{"0.5 MBPS", KbpsOf(500)},
	}
	for _, c := range cases {
		got, err := ParseBitrate(c.in)
		if err != nil {
			t.Errorf("ParseBitrate(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseBitrate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseBitrateErrors(t *testing.T) {
	for _, in := range []string{"", "fast", "-3 Mbps", "NaN", "1e400 Mbps"} {
		if _, err := ParseBitrate(in); err == nil {
			t.Errorf("ParseBitrate(%q) succeeded, want error", in)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want ByteSize
	}{
		{"250GB", 250 * GB},
		{"1.5 TB", 1500 * GB},
		{"100 mb", 100 * MB},
		{"1024", 1024},
		{"2 kB", 2 * KB},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if err != nil {
			t.Errorf("ParseByteSize(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseByteSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseByteSizeErrors(t *testing.T) {
	for _, in := range []string{"", "big", "-1GB"} {
		if _, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) succeeded, want error", in)
		}
	}
}

func TestParseBitrateStringRoundTrip(t *testing.T) {
	// String output of a parsed value must re-parse to (approximately) the
	// same rate: guards against unit drift between formatter and parser.
	f := func(v float64) bool {
		v = 0.1 + math.Mod(math.Abs(v), 1e6) // 0.1 bps .. 1 Mbps span via kbps below
		r := KbpsOf(v)
		back, err := ParseBitrate(r.String())
		if err != nil {
			return false
		}
		// String() keeps 2-3 significant decimals; allow 1% slack.
		return math.Abs(float64(back-r)) <= 0.01*float64(r)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
