package bench

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// baselineRe matches committed trajectory files: BENCH_<pr>.json.
var baselineRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestBaseline returns the path of the BENCH_<n>.json in dir with the
// highest PR index, or "" (with nil error) when dir holds none. Indices
// compare numerically: a lexical sort would place BENCH_10.json before
// BENCH_6.json and silently gate CI against a stale baseline once the
// trajectory reaches double digits. Resolve the baseline BEFORE writing a
// new trajectory file, or a run could compare against its own output.
func LatestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestName := -1, ""
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := baselineRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		idx, err := strconv.Atoi(m[1])
		if err != nil || idx <= best {
			continue
		}
		best, bestName = idx, e.Name()
	}
	if best < 0 {
		return "", nil
	}
	return filepath.Join(dir, bestName), nil
}
