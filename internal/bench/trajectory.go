// Package bench is the perf-trajectory harness behind cmd/bbbench: a
// canonical set of benchmark specs covering the load-bearing paths of the
// reproduction (world build, matcher, experiment fan-out, dataset
// streaming, both netsim substrates), measured with testing.Benchmark and
// recorded as a versioned JSON trajectory that later commits compare
// against. DESIGN.md documents the schema and the baseline/tolerance
// contract.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Schema identifies the trajectory file format. Bump only for
// incompatible changes; readers reject files with a different schema
// rather than misinterpret them.
const Schema = "bbbench/1"

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// MBPerS is throughput for specs that declare a byte volume
	// (the streaming benches); zero elsewhere.
	MBPerS float64 `json:"mb_per_s,omitempty"`
}

// Trajectory is one recorded benchmark run: the measurements plus enough
// host metadata to judge whether two trajectories are comparable at all
// (ns/op across different CPUs is not a regression signal).
type Trajectory struct {
	Schema     string   `json:"schema"`
	Go         string   `json:"go"`
	OS         string   `json:"os"`
	Arch       string   `json:"arch"`
	CPUs       int      `json:"cpus"`
	Created    string   `json:"created"` // RFC 3339
	Benchmarks []Result `json:"benchmarks"`
}

// NewTrajectory returns an empty trajectory stamped with the current
// host's metadata and the given creation time.
func NewTrajectory(created time.Time) *Trajectory {
	return &Trajectory{
		Schema:  Schema,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Created: created.UTC().Format(time.RFC3339),
	}
}

// Write serializes the trajectory as indented JSON.
func (t *Trajectory) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrajectory parses a trajectory and validates its schema.
func ReadTrajectory(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("bench: parsing trajectory: %w", err)
	}
	if t.Schema != Schema {
		return nil, fmt.Errorf("bench: trajectory schema %q, want %q", t.Schema, Schema)
	}
	return &t, nil
}

// Delta compares one benchmark between a current run and a baseline.
type Delta struct {
	Name   string
	BaseNs float64
	CurNs  float64
	Ratio  float64 // CurNs / BaseNs
	// Regressed is true when the current ns/op exceeds the baseline by
	// more than the tolerance: cur > base × (1 + tolerance).
	Regressed bool
	// Alloc fields track allocs/op for specs under the allocation gate
	// (Spec.GateAllocs). AllocGated marks the spec as gated;
	// AllocRegressed fails the run under the same relative-tolerance rule
	// as ns/op.
	BaseAllocs     int64
	CurAllocs      int64
	AllocRatio     float64 // CurAllocs / BaseAllocs
	AllocGated     bool
	AllocRegressed bool
}

// Compare matches the current trajectory against a baseline at the given
// relative tolerance (0.20 = 20% slower fails). It returns a delta per
// benchmark present in both, sorted by name, plus the names of baseline
// benchmarks missing from the current run (renamed or dropped specs —
// reported so a silent rename cannot hide a regression). Benchmarks new
// in the current run have no baseline and are not compared.
func Compare(cur, base *Trajectory, tolerance float64) (deltas []Delta, missing []string, err error) {
	return CompareGated(cur, base, tolerance, nil)
}

// CompareGated is Compare with an allocation gate: for each benchmark
// whose name is in allocGate, allocs/op is held to the same relative
// tolerance as ns/op. Alloc counts on ungated specs are reported in the
// deltas but never fail the comparison.
func CompareGated(cur, base *Trajectory, tolerance float64, allocGate map[string]bool) (deltas []Delta, missing []string, err error) {
	if tolerance < 0 {
		return nil, nil, fmt.Errorf("bench: tolerance must be non-negative, got %v", tolerance)
	}
	curByName := make(map[string]Result, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curByName[r.Name] = r
	}
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		d := Delta{
			Name: b.Name, BaseNs: b.NsPerOp, CurNs: c.NsPerOp,
			BaseAllocs: b.AllocsPerOp, CurAllocs: c.AllocsPerOp,
			AllocGated: allocGate[b.Name],
		}
		if b.NsPerOp > 0 {
			d.Ratio = c.NsPerOp / b.NsPerOp
			d.Regressed = c.NsPerOp > b.NsPerOp*(1+tolerance)
		}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
			if d.AllocGated {
				d.AllocRegressed = float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tolerance)
			}
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(missing)
	return deltas, missing, nil
}

// MissingUnknown filters Compare's missing list down to the names no spec
// in the universe defines: baseline entries that no run could ever
// reproduce again (a renamed or deleted spec), as opposed to entries
// merely outside this run's selected set (a smoke run against a full-set
// baseline). The distinction is what lets bbbench fail loudly on the
// former — a silent rename would otherwise retire a benchmark's history
// without anyone deciding to — while only warning about the latter.
func MissingUnknown(missing []string, universe []Spec) []string {
	known := make(map[string]bool, len(universe))
	for _, s := range universe {
		known[s.Name] = true
	}
	var out []string
	for _, name := range missing {
		if !known[name] {
			out = append(out, name)
		}
	}
	return out
}

// Regressions filters a delta set to the failures — a ns/op regression
// or a gated allocs/op regression.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed || d.AllocRegressed {
			out = append(out, d)
		}
	}
	return out
}
