package bench

import (
	"testing"
	"time"
)

func TestArtifactSlug(t *testing.T) {
	cases := map[string]string{
		"Fig. 1":   "fig01",
		"Fig. 12":  "fig12",
		"Table 2":  "table02",
		"Table 12": "table12",
		"Ext. A":   "ext_a",
	}
	for id, want := range cases {
		if got := artifactSlug(id); got != want {
			t.Errorf("artifactSlug(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestSpecsIncludeArtifactSubBenchmarks(t *testing.T) {
	byName := map[string]Spec{}
	for _, s := range Specs() {
		byName[s.Name] = s
	}
	// One sub-spec per registry artifact, full-set only.
	for _, name := range []string{"artifact_fig01", "artifact_fig12", "artifact_table02", "artifact_table08"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("spec %q missing", name)
		}
		if s.Smoke {
			t.Errorf("%s is in the smoke set; per-artifact specs are full-set only", name)
		}
	}
	// The gated hot paths carry the allocation gate; run_all is in CI's
	// smoke set so the gate actually runs on every push.
	for _, name := range []string{"run_all", "world_build_150u"} {
		s := byName[name]
		if !s.GateAllocs {
			t.Errorf("%s should gate allocs/op", name)
		}
		if !s.Smoke {
			t.Errorf("%s should be in the smoke set", name)
		}
	}
	gate := AllocGate(Specs())
	if !gate["run_all"] || !gate["world_build_150u"] {
		t.Fatalf("AllocGate = %v, missing gated specs", gate)
	}
	if gate["matcher_1000"] {
		t.Error("AllocGate includes an ungated spec")
	}
}

func TestCompareGatedAllocs(t *testing.T) {
	base := NewTrajectory(time.Unix(0, 0))
	base.Benchmarks = []Result{
		{Name: "gated", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "ungated", NsPerOp: 1000, AllocsPerOp: 100},
	}
	cur := NewTrajectory(time.Unix(0, 0))
	cur.Benchmarks = []Result{
		{Name: "gated", NsPerOp: 1000, AllocsPerOp: 150},
		{Name: "ungated", NsPerOp: 1000, AllocsPerOp: 150},
	}
	deltas, missing, err := CompareGated(cur, base, 0.20, map[string]bool{"gated": true})
	if err != nil || len(missing) != 0 {
		t.Fatalf("CompareGated: %v, missing %v", err, missing)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	g := byName["gated"]
	if !g.AllocGated || !g.AllocRegressed || g.Regressed {
		t.Fatalf("gated delta = %+v; want alloc regression only", g)
	}
	if g.BaseAllocs != 100 || g.CurAllocs != 150 || g.AllocRatio != 1.5 {
		t.Fatalf("gated alloc fields = %+v", g)
	}
	u := byName["ungated"]
	if u.AllocGated || u.AllocRegressed {
		t.Fatalf("ungated delta = %+v; alloc growth must not fail ungated specs", u)
	}
	if u.AllocRatio != 1.5 {
		t.Fatalf("ungated delta should still report alloc ratio: %+v", u)
	}

	if reg := Regressions(deltas); len(reg) != 1 || reg[0].Name != "gated" {
		t.Fatalf("Regressions = %+v; want the gated alloc failure only", reg)
	}

	// Within tolerance: no failure.
	cur.Benchmarks[0].AllocsPerOp = 110
	deltas, _, err = CompareGated(cur, base, 0.20, map[string]bool{"gated": true})
	if err != nil {
		t.Fatal(err)
	}
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("Regressions = %+v; 10%% alloc growth is within tolerance", reg)
	}

	// Plain Compare never alloc-gates.
	cur.Benchmarks[0].AllocsPerOp = 500
	deltas, _, err = Compare(cur, base, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("Compare gated allocs without a gate: %+v", reg)
	}
}

func TestMissingUnknown(t *testing.T) {
	universe := []Spec{{Name: "run_all"}, {Name: "server_query"}}
	// A missing name still defined somewhere in the universe is a set
	// mismatch, not a retirement; only truly unknown names survive.
	got := MissingUnknown([]string{"run_all", "old_matcher", "server_query", "ghost"}, universe)
	if len(got) != 2 || got[0] != "old_matcher" || got[1] != "ghost" {
		t.Fatalf("MissingUnknown = %v, want [old_matcher ghost]", got)
	}
	if got := MissingUnknown(nil, universe); got != nil {
		t.Fatalf("MissingUnknown(nil) = %v", got)
	}
	if got := MissingUnknown([]string{"run_all"}, universe); got != nil {
		t.Fatalf("known-only missing list produced %v", got)
	}
}

func TestSmokeSetIncludesServerQuery(t *testing.T) {
	smoke, err := Select("smoke")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range smoke {
		if s.Name == "server_query" {
			return
		}
	}
	t.Fatal("server_query spec not in the smoke set")
}
