package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func touch(t *testing.T, dir, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLatestBaselineNumericOrder pins the double-digit regression this
// helper exists to prevent: with baselines {2, 6, 10} a lexical sort picks
// BENCH_6.json (since "BENCH_10" < "BENCH_6" as strings); the numeric sort
// must pick BENCH_10.json.
func TestLatestBaselineNumericOrder(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_6.json", "BENCH_10.json"} {
		touch(t, dir, name)
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); got != want {
		t.Errorf("LatestBaseline = %q, want %q", got, want)
	}
}

func TestLatestBaselineIgnoresNonBaselines(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_3.json", "bench-ci.json", "BENCH_X.json", "BENCH_12.json.bak",
		"BENCH_.json", "BENCH_4.JSON", "notBENCH_9.json",
	} {
		touch(t, dir, name)
	}
	if err := os.Mkdir(filepath.Join(dir, "BENCH_99.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_3.json"); got != want {
		t.Errorf("LatestBaseline = %q, want %q (everything else is not a baseline)", got, want)
	}
}

func TestLatestBaselineEmpty(t *testing.T) {
	t.Parallel()
	got, err := LatestBaseline(t.TempDir())
	if err != nil || got != "" {
		t.Errorf("LatestBaseline(empty) = %q, %v; want \"\", nil", got, err)
	}
	if _, err := LatestBaseline(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LatestBaseline of a missing dir should error")
	}
}
