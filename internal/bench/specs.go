package bench

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/netsim"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/serve"
	"github.com/nwca/broadband/internal/synth"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// Spec is one canonical benchmark: a stable name (the trajectory key —
// renaming one orphans its history) and a standard testing benchmark body.
type Spec struct {
	Name string
	// Smoke marks the spec as part of the reduced set CI runs on every
	// push; the full set includes everything.
	Smoke bool
	// GateAllocs marks the spec's allocs/op as part of the regression
	// contract: bbbench fails the run when it rises past the baseline by
	// more than the tolerance, same rule as ns/op. Reserved for specs
	// whose allocation count is stable enough to gate on.
	GateAllocs bool
	Run        func(b *testing.B)
}

// Measure runs one spec via testing.Benchmark and converts the result.
// It honors the -test.benchtime flag when set (cmd/bbbench wires its
// -benchtime flag through testing.Init).
func Measure(s Spec) (Result, error) {
	r := testing.Benchmark(s.Run)
	if r.N == 0 {
		return Result{}, fmt.Errorf("bench: %s failed (zero iterations)", s.Name)
	}
	res := Result{
		Name:        s.Name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return res, nil
}

// Specs returns the canonical benchmark set in run order. Names are part
// of the trajectory contract: stable across commits so BENCH_<n>.json
// files remain comparable.
func Specs() []Spec {
	specs := []Spec{
		{Name: "world_build_150u", Smoke: true, GateAllocs: true, Run: benchWorldBuild},
		{Name: "matcher_1000", Smoke: true, Run: benchMatcher1000},
		{Name: "run_all", Smoke: true, GateAllocs: true, Run: benchRunAll},
		{Name: "stream_encode_2000", Smoke: true, Run: benchStreamEncode},
		{Name: "stream_decode_2000", Smoke: true, Run: benchStreamDecode},
		{Name: "fluid_day", Smoke: true, Run: benchFluidDay},
		{Name: "packet_ndt", Smoke: true, Run: benchPacketNDT},
		{Name: "simulator_churn", Smoke: true, Run: benchSimulatorChurn},
		{Name: "server_query", Smoke: true, Run: benchServerQuery},
	}
	// Per-artifact sub-benchmarks: one spec per registry entry, so a
	// regression in run_all can be localized to the figure or table that
	// caused it. Full-set only — the aggregate run_all spec covers CI.
	for _, e := range broadband.Experiments() {
		specs = append(specs, Spec{
			Name: "artifact_" + artifactSlug(e.ID),
			Run:  benchArtifact(e.ID),
		})
	}
	return specs
}

// artifactSlug converts a registry ID ("Fig. 6", "Table 12") into a
// stable trajectory key ("fig06", "table12"). Numbers are zero-padded so
// the keys sort in registry order.
func artifactSlug(id string) string {
	f := strings.Fields(strings.ToLower(strings.ReplaceAll(id, ".", "")))
	if len(f) == 2 {
		if n, err := strconv.Atoi(f[1]); err == nil {
			return fmt.Sprintf("%s%02d", f[0], n)
		}
	}
	return strings.Join(f, "_")
}

// AllocGate returns the set of spec names whose allocs/op is gated,
// keyed for CompareGated.
func AllocGate(specs []Spec) map[string]bool {
	out := make(map[string]bool)
	for _, s := range specs {
		if s.GateAllocs {
			out[s.Name] = true
		}
	}
	return out
}

// benchArtifact measures a single experiment against the shared run_all
// world.
func benchArtifact(id string) func(b *testing.B) {
	return func(b *testing.B) {
		d, err := runAllWorld()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := broadband.Run(id, d, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The live server behind the server_query spec, started once per process
// over the shared run_all world (same lifetime convention as runAllWorld:
// the listener survives until process exit).
var (
	serverQueryOnce sync.Once
	serverQueryURL  string
	serverQueryErr  error
)

// benchServerQuery measures bbserve's hot query path end to end: an HTTP
// GET through the full middleware stack to a cached artifact result. The
// cache is primed before the timer starts, so the spec tracks the serving
// overhead (routing, admission, cache lookup, response write) rather than
// the first experiment computation.
func benchServerQuery(b *testing.B) {
	serverQueryOnce.Do(func() {
		d, err := runAllWorld()
		if err != nil {
			serverQueryErr = err
			return
		}
		store := serve.NewMemStore()
		if _, err := store.Put("bench", d, nil); err != nil {
			serverQueryErr = err
			return
		}
		srv := serve.New(serve.Config{Store: store, MaxInFlight: 64, Log: log.New(io.Discard, "", 0)})
		serverQueryURL = httptest.NewServer(srv.Handler()).URL
	})
	if serverQueryErr != nil {
		b.Fatal(serverQueryErr)
	}
	url := serverQueryURL + "/v1/datasets/bench/artifacts/fig02?seed=1"
	get := func() error {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || n == 0 {
			return fmt.Errorf("server_query: status %d, %d bytes", resp.StatusCode, n)
		}
		return nil
	}
	if err := get(); err != nil { // prime the result cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := get(); err != nil {
			b.Fatal(err)
		}
	}
}

// Select returns the named set: "full" or "smoke".
func Select(set string) ([]Spec, error) {
	all := Specs()
	switch set {
	case "full":
		return all, nil
	case "smoke":
		out := make([]Spec, 0, len(all))
		for _, s := range all {
			if s.Smoke {
				out = append(out, s)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("bench: unknown set %q (want full or smoke)", set)
	}
}

// benchWorldBuild measures the end-to-end dataset pipeline at small scale
// (choice model + measurement + traffic generation per user).
func benchWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := synth.Build(synth.Config{
			Seed: uint64(i + 1), Users: 150, FCCUsers: 30, Days: 1, SwitchTarget: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(w.Data.Users) == 0 {
			b.Fatal("empty world")
		}
	}
}

// benchMatcher1000 measures the windowed nearest-neighbor matcher on
// synthetic covariates (treated = 1000, control = 2000).
func benchMatcher1000(b *testing.B) {
	const n = 1000
	rng := randx.New(uint64(n))
	mk := func(count int, idBase int64) []*dataset.User {
		us := make([]*dataset.User, count)
		for i := range us {
			us[i] = &dataset.User{
				ID:   idBase + int64(i),
				RTT:  0.01 + 0.2*rng.Float64(),
				Loss: unit.LossRate(0.002 * rng.Float64()),
			}
		}
		return us
	}
	treated := mk(n, 1)
	control := mk(2*n, int64(10*n))
	m := core.Matcher{Confounders: []core.Confounder{core.ConfounderRTT(), core.ConfounderLoss()}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(treated, control, randx.New(uint64(i)))
	}
}

// runAllWorld is the shared world behind the run_all spec, generated once
// per process (it costs seconds; the spec measures the experiment
// fan-out, not world generation).
var (
	runAllOnce  sync.Once
	runAllData  *dataset.Dataset
	runAllBuild error
)

func runAllWorld() (*dataset.Dataset, error) {
	runAllOnce.Do(func() {
		w, err := synth.Build(synth.Config{
			Seed: 20140705, Users: 2000, FCCUsers: 500, Days: 2,
			SwitchTarget: 350, MinPerCountry: 25,
		})
		if err != nil {
			runAllBuild = err
			return
		}
		runAllData = &w.Data
	})
	return runAllData, runAllBuild
}

// benchRunAll measures the full experiment registry fan-out (every table
// and figure) against the shared world at the default worker count.
func benchRunAll(b *testing.B) {
	d, err := runAllWorld()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broadband.RunAllWorkers(d, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// streamUsers synthesizes a deterministic user table for the streaming
// benches (the dataset package's test fixtures are not importable here).
func streamUsers(n int) []dataset.User {
	countries := []string{"US", "JP", "DE", "BR", "IN"}
	users := make([]dataset.User, n)
	for i := range users {
		users[i] = dataset.User{
			ID:          int64(i + 1),
			Country:     countries[i%len(countries)],
			Year:        2011 + i%3,
			ISP:         "isp-" + countries[i%len(countries)],
			NetworkKey:  "net-" + countries[i%len(countries)],
			PlanDown:    unit.MbpsOf(1.5 + float64(i%37)*0.83),
			PlanUp:      unit.MbpsOf(0.5),
			PlanPrice:   unit.USD(20 + float64(i%50)),
			Capacity:    unit.MbpsOf(1.2 + float64(i%37)*0.8),
			RTT:         0.005 + float64(i)*1e-4/3,
			Loss:        unit.LossRate(float64(i%11) * 1e-4 / 7),
			UsesBT:      i%3 == 0,
			AccessPrice: unit.USD(7.77 + float64(i)/13),
		}
	}
	return users
}

const streamRows = 2000

// streamRaw is the encoded form of the bench user table, built once: the
// decode spec's input and both specs' throughput byte count.
var streamRaw = sync.OnceValues(func() ([]byte, error) {
	var buf bytes.Buffer
	err := dataset.WriteUsers(&buf, streamUsers(streamRows))
	return buf.Bytes(), err
})

// benchStreamEncode measures the streaming CSV writer over streamRows
// users per op.
func benchStreamEncode(b *testing.B) {
	users := streamUsers(streamRows)
	raw, err := streamRaw()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uw, err := dataset.NewUserWriter(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for j := range users {
			if err := uw.Write(&users[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchStreamDecode measures the streaming CSV reader over the same table.
func benchStreamDecode(b *testing.B) {
	raw, err := streamRaw()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ur, err := dataset.NewUserReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var u dataset.User
		rows := 0
		for {
			err := ur.Read(&u)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows++
		}
		if rows != streamRows {
			b.Fatalf("read %d rows", rows)
		}
	}
}

// benchFluidDay measures one user-day of flow-level simulation plus its
// summary — the unit of dataset generation.
func benchFluidDay(b *testing.B) {
	g := &traffic.Generator{
		Capacity: unit.MbpsOf(10),
		Quality:  traffic.Quality{RTT: 0.04, Loss: 0.0005},
		Profile:  traffic.Profile{NeedMbps: 3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := g.Generate(1, randx.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Summarize(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPacketNDT measures one packet-level NDT run (the expensive
// measurement path the fluid model amortizes away for usage horizons).
func benchPacketNDT(b *testing.B) {
	line := netsim.AccessLine{
		Down: netsim.LinkConfig{Rate: unit.MbpsOf(10), Delay: 0.02, Loss: netsim.LossModel{Rate: 0.002}},
		Up:   netsim.LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.02},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := netsim.RunNDT(line, netsim.NDTConfig{Duration: 5, SkipUp: true}, randx.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.DownloadRate
	}
}

// benchSimulatorChurn measures the event-queue substrate through the
// Simulator API on a self-extending schedule shaped like the packet
// simulator's (each event schedules its successor a sub-millisecond step
// ahead) — the spec that tracks the calendar queue's trajectory.
func benchSimulatorChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s netsim.Simulator
		remaining := 10000
		var step func()
		step = func() {
			if remaining > 0 {
				remaining--
				s.After(0.0012, step)
			}
		}
		for j := 0; j < 64; j++ {
			s.After(float64(j)*0.0001, step)
		}
		s.Run()
		if s.Now() == 0 {
			b.Fatal("simulator did not advance")
		}
	}
}
