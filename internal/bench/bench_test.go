package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleTrajectory() *Trajectory {
	t := NewTrajectory(time.Date(2014, 7, 5, 12, 0, 0, 0, time.UTC))
	t.Benchmarks = []Result{
		{Name: "fluid_day", Iters: 5000, NsPerOp: 200190.4, AllocsPerOp: 88, BytesPerOp: 87521},
		{Name: "stream_encode_2000", Iters: 800, NsPerOp: 1.5e6, AllocsPerOp: 3, BytesPerOp: 4096, MBPerS: 150.2},
	}
	return t
}

// TestTrajectoryRoundTrip pins the JSON contract: what bbbench writes,
// bbbench (and the CI gate) can read back identically.
func TestTrajectoryRoundTrip(t *testing.T) {
	want := sampleTrajectory()
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"schema": "bbbench/1"`, `"ns_per_op"`, `"allocs_per_op"`,
		`"bytes_per_op"`, `"mb_per_s"`, `"created": "2014-07-05T12:00:00Z"`,
	} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("serialized trajectory missing %s:\n%s", field, buf.String())
		}
	}
	got, err := ReadTrajectory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReadTrajectoryRejectsWrongSchema: an incompatible or corrupt file
// must be an error, never a silently empty baseline.
func TestReadTrajectoryRejectsWrongSchema(t *testing.T) {
	cases := map[string]string{
		"wrong schema":  `{"schema":"bbbench/9","go":"go1.22","os":"linux","arch":"amd64","cpus":4,"created":"x","benchmarks":[]}`,
		"unknown field": `{"schema":"bbbench/1","bogus":1}`,
		"not json":      `ns/op: 12345`,
	}
	for name, raw := range cases {
		if _, err := ReadTrajectory(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: ReadTrajectory accepted %q", name, raw)
		}
	}
}

func TestCompare(t *testing.T) {
	base := sampleTrajectory()
	cur := NewTrajectory(time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC))
	cur.Benchmarks = []Result{
		// 10% slower: within a 20% tolerance.
		{Name: "fluid_day", NsPerOp: 200190.4 * 1.10},
		// New benchmark, no baseline: not compared.
		{Name: "run_all", NsPerOp: 1e8},
	}
	deltas, missing, err := Compare(cur, base, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Name != "fluid_day" {
		t.Fatalf("deltas = %+v, want exactly fluid_day", deltas)
	}
	if deltas[0].Regressed {
		t.Errorf("10%% slowdown flagged at 20%% tolerance: %+v", deltas[0])
	}
	if got := deltas[0].Ratio; got < 1.09 || got > 1.11 {
		t.Errorf("ratio = %v, want ~1.10", got)
	}
	// The dropped benchmark must be reported, not silently ignored.
	if len(missing) != 1 || missing[0] != "stream_encode_2000" {
		t.Errorf("missing = %v, want [stream_encode_2000]", missing)
	}

	// Beyond tolerance: flagged.
	cur.Benchmarks[0].NsPerOp = 200190.4 * 1.35
	deltas, _, err = Compare(cur, base, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !deltas[0].Regressed {
		t.Errorf("35%% slowdown not flagged at 20%% tolerance: %+v", deltas[0])
	}
	if reg := Regressions(deltas); len(reg) != 1 {
		t.Errorf("Regressions = %+v, want 1", reg)
	}

	// An improvement never regresses, whatever the tolerance.
	cur.Benchmarks[0].NsPerOp = 200190.4 * 0.5
	deltas, _, err = Compare(cur, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Regressed {
		t.Errorf("2x speedup flagged as regression: %+v", deltas[0])
	}

	if _, _, err := Compare(cur, base, -0.1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

// TestSpecsWellFormed pins the canonical-set contract: unique stable
// names, runnable bodies, and a nonempty smoke subset.
func TestSpecsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	smoke := 0
	for _, s := range Specs() {
		if s.Name == "" || s.Run == nil {
			t.Fatalf("malformed spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Smoke {
			smoke++
		}
	}
	if smoke == 0 {
		t.Fatal("no smoke specs: the CI gate would measure nothing")
	}
	if !seen["run_all"] || !seen["fluid_day"] || !seen["packet_ndt"] {
		t.Fatalf("canonical specs missing from %v", seen)
	}

	full, err := Select("full")
	if err != nil || len(full) != len(Specs()) {
		t.Fatalf("Select(full) = %d specs, err %v", len(full), err)
	}
	sm, err := Select("smoke")
	if err != nil || len(sm) != smoke {
		t.Fatalf("Select(smoke) = %d specs, err %v; want %d", len(sm), err, smoke)
	}
	if _, err := Select("nightly"); err == nil {
		t.Error("Select accepted unknown set")
	}
}

// TestMeasure checks the testing.Benchmark wiring on a synthetic spec,
// including the throughput conversion and the failure path.
func TestMeasure(t *testing.T) {
	r, err := Measure(Spec{Name: "noop", Run: func(b *testing.B) {
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			_ = i
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "noop" || r.Iters <= 0 || r.NsPerOp < 0 {
		t.Fatalf("implausible result %+v", r)
	}
	if r.MBPerS <= 0 {
		t.Errorf("SetBytes spec reported no throughput: %+v", r)
	}

	if _, err := Measure(Spec{Name: "failing", Run: func(b *testing.B) {
		b.Fatal("boom")
	}}); err == nil {
		t.Error("Measure reported success for a failing benchmark")
	}
}

// TestStreamSpecsAgree runs the two cheapest real specs end to end with
// the shortest possible benchtime, proving the canonical bodies execute
// outside `go test -bench`. (The heavyweight specs are exercised by
// cmd/bbbench itself and the root bench suite.)
func TestStreamSpecsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	for _, name := range []string{"stream_encode_2000", "stream_decode_2000", "simulator_churn"} {
		var spec Spec
		for _, s := range Specs() {
			if s.Name == name {
				spec = s
			}
		}
		r, err := Measure(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Iters <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible result %+v", name, r)
		}
	}
}
