package broadband

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/experiments"
	"github.com/nwca/broadband/internal/randx"
)

// fakeReport satisfies experiments.Report for the injected entries.
type fakeReport struct{ id string }

func (r fakeReport) ID() string     { return r.id }
func (r fakeReport) Title() string  { return "injected" }
func (r fakeReport) Render() string { return r.id + "\n" }

// failAt builds an entry list where the entries at the given indices fail
// and every other entry succeeds, counting executions as it goes.
func failAt(n int, ran *atomic.Int32, fail map[int]error) []experiments.Entry {
	entries := make([]experiments.Entry, n)
	for i := range entries {
		i := i
		id := fmt.Sprintf("E%02d", i)
		entries[i] = experiments.Entry{ID: id, Title: "injected", Run: func(*dataset.Dataset, *randx.Source) (experiments.Report, error) {
			ran.Add(1)
			if err := fail[i]; err != nil {
				return nil, err
			}
			return fakeReport{id: id}, nil
		}}
	}
	return entries
}

// TestRunEntriesFailureInjection pins the error contract of the experiment
// fan-out under mid-run failures, for every worker-pool shape: all entries
// still run, the returned error is the lowest-indexed failure, and the
// partial report slice is exactly the prefix preceding it — what a
// sequential loop would have reported. Run under -race this also exercises
// concurrent error collection.
func TestRunEntriesFailureInjection(t *testing.T) {
	errMid := errors.New("mid-run failure")
	errLate := errors.New("late failure")
	for _, workers := range []int{1, 2, 0} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var ran atomic.Int32
			entries := failAt(12, &ran, map[int]error{7: errLate, 3: errMid})
			reports, err := runEntries(context.Background(), entries, &dataset.Dataset{}, 1, workers)
			if !errors.Is(err, errMid) {
				t.Fatalf("err = %v, want the lowest-indexed failure %v", err, errMid)
			}
			if got := ran.Load(); got != 12 {
				t.Errorf("%d of 12 entries ran; a failure must not cancel the rest", got)
			}
			if len(reports) != 3 {
				t.Fatalf("got %d partial reports, want the 3 preceding the failure", len(reports))
			}
			for i, rep := range reports {
				if want := fmt.Sprintf("E%02d", i); rep.ID() != want {
					t.Errorf("partial report %d is %s, want %s", i, rep.ID(), want)
				}
			}
		})
	}
}

// TestRunEntriesErrorNamesArtifact: the wrapped error must carry the
// failing entry's ID so drift reports and operators can name the culprit.
func TestRunEntriesErrorNamesArtifact(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	entries := failAt(5, &ran, map[int]error{2: boom})
	_, err := runEntries(context.Background(), entries, &dataset.Dataset{}, 1, 2)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := "E02"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the failing artifact %s", err, want)
	}
}

// TestRunEntriesAllSucceed: the no-failure path returns every report in
// entry order regardless of worker interleaving.
func TestRunEntriesAllSucceed(t *testing.T) {
	var ran atomic.Int32
	entries := failAt(9, &ran, nil)
	reports, err := runEntries(context.Background(), entries, &dataset.Dataset{}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 9 {
		t.Fatalf("got %d reports, want 9", len(reports))
	}
	for i, rep := range reports {
		if want := fmt.Sprintf("E%02d", i); rep.ID() != want {
			t.Errorf("report %d is %s, want %s", i, rep.ID(), want)
		}
	}
}
