package broadband_test

import (
	"bytes"
	"io"
	"testing"

	broadband "github.com/nwca/broadband"
)

// TestFacadeStreamingRoundTrip drives every exported streaming constructor
// through a write→read→write cycle on real world data. Unit-scaled fields
// round once on first save, so the contract checked here is the documented
// one: a reloaded row re-encodes to exactly the bytes it was read from.
func TestFacadeStreamingRoundTrip(t *testing.T) {
	w := apiTestWorld(t)
	d := &w.Data
	if len(d.Users) < 10 || len(d.Switches) < 5 || len(d.Plans) < 10 {
		t.Fatalf("world too small: %d users, %d switches, %d plans",
			len(d.Users), len(d.Switches), len(d.Plans))
	}

	t.Run("users", func(t *testing.T) {
		var first bytes.Buffer
		uw, err := broadband.NewUserWriter(&first)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d.Users[:10] {
			if err := uw.Write(&d.Users[i]); err != nil {
				t.Fatal(err)
			}
		}
		ur, err := broadband.NewUserReader(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		uw2, err := broadband.NewUserWriter(&second)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			var u broadband.User
			if err := ur.Read(&u); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			if err := uw2.Write(&u); err != nil {
				t.Fatal(err)
			}
			rows++
		}
		if rows != 10 {
			t.Fatalf("read back %d users, wrote 10", rows)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Error("users did not reach the save→load→save fixed point")
		}
	})

	t.Run("switches", func(t *testing.T) {
		var first bytes.Buffer
		sw, err := broadband.NewSwitchWriter(&first)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d.Switches[:5] {
			if err := sw.Write(&d.Switches[i]); err != nil {
				t.Fatal(err)
			}
		}
		sr, err := broadband.NewSwitchReader(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		sw2, err := broadband.NewSwitchWriter(&second)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			var s broadband.Switch
			if err := sr.Read(&s); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			if err := sw2.Write(&s); err != nil {
				t.Fatal(err)
			}
			rows++
		}
		if rows != 5 {
			t.Fatalf("read back %d switches, wrote 5", rows)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Error("switches did not reach the save→load→save fixed point")
		}
	})

	t.Run("plans", func(t *testing.T) {
		var first bytes.Buffer
		pw, err := broadband.NewPlanWriter(&first)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d.Plans[:10] {
			if err := pw.Write(&d.Plans[i]); err != nil {
				t.Fatal(err)
			}
		}
		pr, err := broadband.NewPlanReader(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		pw2, err := broadband.NewPlanWriter(&second)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			var p broadband.Plan
			if err := pr.Read(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			if err := pw2.Write(&p); err != nil {
				t.Fatal(err)
			}
			rows++
		}
		if rows != 10 {
			t.Fatalf("read back %d plans, wrote 10", rows)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Error("plans did not reach the save→load→save fixed point")
		}
	})
}

func TestFacadeRegistryLookups(t *testing.T) {
	exts := broadband.ExtensionExperiments()
	if len(exts) == 0 {
		t.Error("ExtensionExperiments is empty")
	}
	e, ok := broadband.FindExperiment("Table 1")
	if !ok || e.ID != "Table 1" {
		t.Errorf("FindExperiment(Table 1) = %+v, %v", e, ok)
	}
	if _, ok := broadband.FindExperiment("Table 42"); ok {
		t.Error("FindExperiment must reject unknown IDs")
	}
	// Extensions are not reachable through FindExperiment.
	if _, ok := broadband.FindExperiment(exts[0].ID); ok {
		t.Errorf("FindExperiment must not search extensions (%s)", exts[0].ID)
	}
}
